#include "src/obs/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/obs/trace.h"
#include "src/util/sync.h"

namespace rgae {
namespace obs {

namespace {

LogLevel ParseLevel(const char* text, LogLevel fallback) {
  if (text == nullptr) return fallback;
  if (std::strcmp(text, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(text, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(text, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(text, "error") == 0) return LogLevel::kError;
  if (std::strcmp(text, "off") == 0) return LogLevel::kOff;
  return fallback;
}

struct LoggerState {
  std::atomic<int> level;
  std::atomic<bool> stderr_enabled{true};
  Mutex sink_mu{"Logger.sink"};
  std::FILE* jsonl RGAE_GUARDED_BY(sink_mu) = nullptr;

  LoggerState()
      : level(static_cast<int>(
            ParseLevel(std::getenv("RGAE_LOG_LEVEL"), LogLevel::kInfo))) {
    const char* path = std::getenv("RGAE_LOG_JSONL");
    if (path != nullptr && path[0] != '\0') jsonl = std::fopen(path, "a");
  }
};

LoggerState& State() {
  static LoggerState* state = new LoggerState();  // Never dies.
  return *state;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         State().level.load(std::memory_order_relaxed);
}

void SetLogLevel(LogLevel level) {
  State().level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(State().level.load(std::memory_order_relaxed));
}

bool SetLogJsonlPath(const std::string& path) {
  LoggerState& s = State();
  MutexLock lock(s.sink_mu);
  if (s.jsonl != nullptr) {
    std::fclose(s.jsonl);
    s.jsonl = nullptr;
  }
  if (path.empty()) return true;
  s.jsonl = std::fopen(path.c_str(), "a");
  return s.jsonl != nullptr;
}

void SetLogStderr(bool enabled) {
  State().stderr_enabled.store(enabled, std::memory_order_relaxed);
}

LogRecord::LogRecord(LogLevel level)
    : level_(level), fields_(JsonValue::MakeObject()) {}

LogRecord& LogRecord::Event(const std::string& name) {
  fields_.Set("event", JsonValue(name));
  return *this;
}

LogRecord& LogRecord::Field(const std::string& key, const std::string& value) {
  fields_.Set(key, JsonValue(value));
  return *this;
}
LogRecord& LogRecord::Field(const std::string& key, const char* value) {
  fields_.Set(key, JsonValue(value));
  return *this;
}
LogRecord& LogRecord::Field(const std::string& key, double value) {
  fields_.Set(key, JsonValue(value));
  return *this;
}
LogRecord& LogRecord::Field(const std::string& key, int value) {
  fields_.Set(key, JsonValue(value));
  return *this;
}
LogRecord& LogRecord::Field(const std::string& key, long value) {
  fields_.Set(key, JsonValue(value));
  return *this;
}
LogRecord& LogRecord::Field(const std::string& key, long long value) {
  fields_.Set(key, JsonValue(value));
  return *this;
}
LogRecord& LogRecord::Field(const std::string& key, unsigned long value) {
  fields_.Set(key, JsonValue(static_cast<unsigned long long>(value)));
  return *this;
}
LogRecord& LogRecord::Field(const std::string& key, unsigned long long value) {
  fields_.Set(key, JsonValue(value));
  return *this;
}
LogRecord& LogRecord::Field(const std::string& key, bool value) {
  fields_.Set(key, JsonValue(value));
  return *this;
}

LogRecord& LogRecord::Msg(const std::string& text) {
  fields_.Set("msg", JsonValue(text));
  return *this;
}

LogRecord::~LogRecord() {
  LoggerState& s = State();

  if (s.stderr_enabled.load(std::memory_order_relaxed)) {
    std::string line = "[";
    line += LogLevelName(level_);
    line += "]";
    const JsonValue* event = fields_.Get("event");
    if (event != nullptr && event->is_string()) {
      line += " " + event->string();
    }
    for (const auto& [key, value] : fields_.entries()) {
      if (key == "event") continue;
      line += " " + key + "=";
      // Bare rendering for scalars; strings are quoted only when they
      // contain spaces, keeping the key=value grep-able.
      if (value.is_string() &&
          value.string().find_first_of(" \t\n\"") == std::string::npos) {
        line += value.string();
      } else {
        line += value.Dump();
      }
    }
    line += "\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }

  MutexLock lock(s.sink_mu);
  if (s.jsonl != nullptr) {
    JsonValue record = JsonValue::MakeObject();
    record.Set("ts_us", JsonValue(NowMicros()));
    record.Set("level", JsonValue(LogLevelName(level_)));
    for (const auto& [key, value] : fields_.entries()) {
      record.Set(key, value);
    }
    const std::string line = record.Dump() + "\n";
    std::fwrite(line.data(), 1, line.size(), s.jsonl);
    std::fflush(s.jsonl);
  }
}

}  // namespace obs
}  // namespace rgae
