#include "src/obs/trace.h"

#include <atomic>
#include <chrono>

#include "src/util/fileio.h"

namespace rgae {
namespace obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

std::chrono::steady_clock::time_point TraceOrigin() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return origin;
}

/// Small sequential thread ids so traces stay readable (std::thread::id
/// hashes are 64-bit noise in the Chrome UI).
uint64_t CurrentTid() {
  static std::atomic<uint64_t> next{0};
  thread_local const uint64_t tid = next.fetch_add(1);
  return tid;
}

/// Per-thread stack of open span indices into the global event list.
thread_local std::vector<int> t_span_stack;

}  // namespace

bool TraceEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void SetTraceEnabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceOrigin())
      .count();
}

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();  // Never dies.
  return *collector;
}

int TraceCollector::BeginSpan(const char* name) {
  TraceEvent event;
  event.name = name;
  event.start_us = NowMicros();
  event.tid = CurrentTid();
  event.depth = static_cast<int>(t_span_stack.size());
  event.parent = t_span_stack.empty() ? -1 : t_span_stack.back();
  int index;
  {
    MutexLock lock(mu_);
    if (events_.size() >= kMaxEvents) {
      ++dropped_;
      return -1;
    }
    index = static_cast<int>(events_.size());
    events_.push_back(std::move(event));
  }
  t_span_stack.push_back(index);
  return index;
}

void TraceCollector::EndSpan(int index) {
  if (index < 0) return;
  const int64_t now = NowMicros();
  if (!t_span_stack.empty() && t_span_stack.back() == index) {
    t_span_stack.pop_back();
  }
  MutexLock lock(mu_);
  // A Clear() between Begin and End invalidates the index; skip quietly.
  if (index < static_cast<int>(events_.size())) {
    // Monotonic guard: a span closed on the same steady-clock tick it
    // opened records dur 0, never a negative value (which the Chrome
    // export would otherwise conflate with the -1 "still open" sentinel).
    const int64_t dur = now - events_[index].start_us;
    events_[index].dur_us = dur > 0 ? dur : 0;
  }
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  MutexLock lock(mu_);
  return events_;
}

size_t TraceCollector::size() const {
  MutexLock lock(mu_);
  return events_.size();
}

int64_t TraceCollector::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void TraceCollector::Clear() {
  MutexLock lock(mu_);
  events_.clear();
  dropped_ = 0;
  t_span_stack.clear();
}

JsonValue TraceCollector::ChromeTraceJson() const {
  JsonValue doc = JsonValue::MakeObject();
  JsonValue events = JsonValue::MakeArray();
  {
    MutexLock lock(mu_);
    for (const TraceEvent& e : events_) {
      JsonValue ev = JsonValue::MakeObject();
      ev.Set("name", JsonValue(e.name));
      ev.Set("cat", JsonValue("rgae"));
      ev.Set("ph", JsonValue("X"));
      ev.Set("ts", JsonValue(e.start_us));
      ev.Set("dur", JsonValue(e.dur_us >= 0 ? e.dur_us : int64_t{0}));
      ev.Set("pid", JsonValue(0));
      ev.Set("tid", JsonValue(static_cast<long long>(e.tid)));
      events.Append(std::move(ev));
    }
  }
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", JsonValue("ms"));
  return doc;
}

bool TraceCollector::WriteChromeTrace(const std::string& path,
                                      std::string* error) const {
  // Atomic replace: a crash mid-export leaves the previous trace (or no
  // file), never a torn JSON document chrome://tracing rejects.
  return WriteFileAtomic(path, ChromeTraceJson().Dump() + "\n", error);
}

}  // namespace obs
}  // namespace rgae
