#include "src/obs/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace rgae {
namespace obs {

void JsonValue::Append(JsonValue v) {
  assert(type_ == Type::kArray);
  items_.push_back(std::move(v));
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  assert(type_ == Type::kObject);
  for (auto& [k, existing] : entries_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  entries_.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::Get(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void AppendJsonQuoted(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

namespace {

void AppendNumber(double d, std::string* out) {
  if (!std::isfinite(d)) {
    *out += "null";
    return;
  }
  // Integral values within the exact-double range print without a decimal
  // point so counters read as integers downstream.
  if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void AppendIndent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: AppendNumber(number_, out); break;
    case Type::kString: AppendJsonQuoted(string_, out); break;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent >= 0) AppendIndent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) AppendIndent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (entries_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < entries_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent >= 0) AppendIndent(out, indent, depth + 1);
        AppendJsonQuoted(entries_[i].first, out);
        *out += indent >= 0 ? ": " : ":";
        entries_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) AppendIndent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Hand-rolled recursive-descent parser over a char range.
class Parser {
 public:
  Parser(const char* p, const char* end) : p_(p), end_(end) {}

  bool ParseValue(JsonValue* out);
  void SkipWhitespace() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r')) {
      ++p_;
    }
  }
  bool AtEnd() const { return p_ >= end_; }
  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& what) {
    if (error_.empty()) error_ = what;
    return false;
  }
  bool Consume(char c) {
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }
  bool ParseLiteral(const char* lit, JsonValue v, JsonValue* out) {
    const size_t len = std::strlen(lit);
    if (static_cast<size_t>(end_ - p_) < len ||
        std::strncmp(p_, lit, len) != 0) {
      return Fail(std::string("expected '") + lit + "'");
    }
    p_ += len;
    *out = std::move(v);
    return true;
  }
  bool ParseString(std::string* out);
  bool ParseNumber(JsonValue* out);
  bool ParseHex4(unsigned* out);
  static void AppendUtf8(unsigned cp, std::string* out);

  const char* p_;
  const char* end_;
  std::string error_;
};

bool Parser::ParseHex4(unsigned* out) {
  if (end_ - p_ < 4) return Fail("truncated \\u escape");
  unsigned v = 0;
  for (int i = 0; i < 4; ++i) {
    const char c = p_[i];
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<unsigned>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<unsigned>(c - 'A' + 10);
    } else {
      return Fail("bad \\u escape");
    }
  }
  p_ += 4;
  *out = v;
  return true;
}

void Parser::AppendUtf8(unsigned cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

bool Parser::ParseString(std::string* out) {
  if (!Consume('"')) return false;
  while (p_ < end_ && *p_ != '"') {
    const unsigned char c = static_cast<unsigned char>(*p_);
    if (c < 0x20) return Fail("unescaped control character in string");
    if (c != '\\') {
      out->push_back(*p_++);
      continue;
    }
    ++p_;
    if (p_ >= end_) return Fail("truncated escape");
    const char esc = *p_++;
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        unsigned cp = 0;
        if (!ParseHex4(&cp)) return false;
        // Surrogate pair: combine into one code point when the low half
        // follows; otherwise keep the lone half as-is.
        if (cp >= 0xD800 && cp <= 0xDBFF && end_ - p_ >= 6 && p_[0] == '\\' &&
            p_[1] == 'u') {
          const char* save = p_;
          p_ += 2;
          unsigned low = 0;
          if (!ParseHex4(&low)) return false;
          if (low >= 0xDC00 && low <= 0xDFFF) {
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else {
            p_ = save;
          }
        }
        AppendUtf8(cp, out);
        break;
      }
      default:
        return Fail("bad escape");
    }
  }
  return Consume('"');
}

bool Parser::ParseNumber(JsonValue* out) {
  const char* start = p_;
  if (p_ < end_ && *p_ == '-') ++p_;
  while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                       *p_ == '.' || *p_ == 'e' || *p_ == 'E' || *p_ == '+' ||
                       *p_ == '-')) {
    ++p_;
  }
  if (p_ == start) return Fail("expected number");
  const std::string text(start, p_);
  char* parse_end = nullptr;
  const double v = std::strtod(text.c_str(), &parse_end);
  if (parse_end != text.c_str() + text.size()) return Fail("bad number");
  *out = JsonValue(v);
  return true;
}

bool Parser::ParseValue(JsonValue* out) {
  SkipWhitespace();
  if (p_ >= end_) return Fail("unexpected end of input");
  switch (*p_) {
    case 'n': return ParseLiteral("null", JsonValue::Null(), out);
    case 't': return ParseLiteral("true", JsonValue(true), out);
    case 'f': return ParseLiteral("false", JsonValue(false), out);
    case '"': {
      std::string s;
      if (!ParseString(&s)) return false;
      *out = JsonValue(std::move(s));
      return true;
    }
    case '[': {
      ++p_;
      JsonValue arr = JsonValue::MakeArray();
      SkipWhitespace();
      if (p_ < end_ && *p_ == ']') {
        ++p_;
        *out = std::move(arr);
        return true;
      }
      while (true) {
        JsonValue item;
        if (!ParseValue(&item)) return false;
        arr.Append(std::move(item));
        SkipWhitespace();
        if (p_ < end_ && *p_ == ',') {
          ++p_;
          continue;
        }
        break;
      }
      if (!Consume(']')) return false;
      *out = std::move(arr);
      return true;
    }
    case '{': {
      ++p_;
      JsonValue obj = JsonValue::MakeObject();
      SkipWhitespace();
      if (p_ < end_ && *p_ == '}') {
        ++p_;
        *out = std::move(obj);
        return true;
      }
      while (true) {
        SkipWhitespace();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWhitespace();
        if (!Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        obj.Set(key, std::move(value));
        SkipWhitespace();
        if (p_ < end_ && *p_ == ',') {
          ++p_;
          continue;
        }
        break;
      }
      if (!Consume('}')) return false;
      *out = std::move(obj);
      return true;
    }
    default:
      return ParseNumber(out);
  }
}

}  // namespace

bool JsonValue::Parse(const std::string& text, JsonValue* out,
                      std::string* error) {
  Parser parser(text.data(), text.data() + text.size());
  JsonValue v;
  if (!parser.ParseValue(&v)) {
    if (error != nullptr) *error = parser.error();
    return false;
  }
  parser.SkipWhitespace();
  if (!parser.AtEnd()) {
    if (error != nullptr) *error = "trailing characters after JSON value";
    return false;
  }
  *out = std::move(v);
  return true;
}

}  // namespace obs
}  // namespace rgae
