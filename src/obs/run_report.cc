#include "src/obs/run_report.h"

#include "src/core/health.h"
#include "src/kernels/dispatch.h"
#include "src/obs/memstat.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/util/fileio.h"

namespace rgae {
namespace obs {

namespace {

/// -1 sentinels ("not tracked") → null.
JsonValue OrNull(double v) {
  return v < 0.0 ? JsonValue::Null() : JsonValue(v);
}
JsonValue OrNull(int v) { return v < 0 ? JsonValue::Null() : JsonValue(v); }

/// Λ_FR / Λ_FD live in [-1, 1]; their "not tracked" sentinel is -2.
JsonValue LambdaOrNull(double v) {
  return v <= -1.5 ? JsonValue::Null() : JsonValue(v);
}

JsonValue ScoresJson(const ClusteringScores& scores) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("acc", JsonValue(scores.acc));
  out.Set("nmi", JsonValue(scores.nmi));
  out.Set("ari", JsonValue(scores.ari));
  return out;
}

JsonValue HealthEventJson(const HealthEvent& event) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("epoch", JsonValue(event.epoch));
  out.Set("phase", JsonValue(event.pretrain ? "pretrain" : "cluster"));
  out.Set("status", JsonValue(HealthStatusName(event.status)));
  out.Set("action", JsonValue(event.action));
  return out;
}

}  // namespace

JsonValue EpochRecordJson(const EpochRecord& record) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("epoch", JsonValue(record.epoch));
  out.Set("loss", JsonValue(record.loss));
  out.Set("acc", OrNull(record.acc));
  out.Set("nmi", OrNull(record.nmi));
  out.Set("ari", OrNull(record.ari));
  out.Set("lambda_fr_plain", LambdaOrNull(record.lambda_fr_plain));
  out.Set("lambda_fr_r", LambdaOrNull(record.lambda_fr_r));
  out.Set("lambda_fd_plain", LambdaOrNull(record.lambda_fd_plain));
  out.Set("lambda_fd_r", LambdaOrNull(record.lambda_fd_r));
  out.Set("omega_size", OrNull(record.omega_size));
  out.Set("omega_acc", OrNull(record.omega_acc));
  out.Set("rest_acc", OrNull(record.rest_acc));
  out.Set("self_links", OrNull(record.self_links));
  out.Set("self_true_links", OrNull(record.self_true_links));
  out.Set("self_false_links", OrNull(record.self_false_links));
  out.Set("separability", OrNull(record.separability));
  out.Set("health", JsonValue(HealthStatusName(record.health)));
  if (record.upsilon_ran) {
    JsonValue u = JsonValue::MakeObject();
    u.Set("added_edges", JsonValue(record.upsilon_stats.added_edges));
    u.Set("added_true", JsonValue(record.upsilon_stats.added_true));
    u.Set("added_false", JsonValue(record.upsilon_stats.added_false));
    u.Set("dropped_edges", JsonValue(record.upsilon_stats.dropped_edges));
    u.Set("dropped_true", JsonValue(record.upsilon_stats.dropped_true));
    u.Set("dropped_false", JsonValue(record.upsilon_stats.dropped_false));
    out.Set("upsilon", std::move(u));
  } else {
    out.Set("upsilon", JsonValue::Null());
  }
  return out;
}

JsonValue TrainResultJson(const TrainResult& result) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("scores", ScoresJson(result.scores));
  out.Set("pretrain_seconds", JsonValue(result.pretrain_seconds));
  out.Set("cluster_seconds", JsonValue(result.cluster_seconds));
  out.Set("cluster_epochs_run", JsonValue(result.cluster_epochs_run));
  out.Set("failed", JsonValue(result.failed));
  out.Set("failure_reason", result.failure_reason.empty()
                                ? JsonValue::Null()
                                : JsonValue(result.failure_reason));
  out.Set("timed_out", JsonValue(result.timed_out));
  out.Set("rollbacks", JsonValue(result.rollbacks));
  JsonValue health = JsonValue::MakeArray();
  for (const HealthEvent& event : result.health_log) {
    health.Append(HealthEventJson(event));
  }
  out.Set("health_events", std::move(health));
  JsonValue trace = JsonValue::MakeArray();
  for (const EpochRecord& record : result.trace) {
    trace.Append(EpochRecordJson(record));
  }
  out.Set("trace", std::move(trace));
  return out;
}

JsonValue RunReportJson(const RunReportInfo& info,
                        const TrialOutcome& outcome) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("model", info.model.empty() ? JsonValue::Null()
                                      : JsonValue(info.model));
  out.Set("dataset", info.dataset.empty() ? JsonValue::Null()
                                          : JsonValue(info.dataset));
  out.Set("variant", JsonValue(info.variant));
  out.Set("trial", JsonValue(info.trial));
  out.Set("seed", JsonValue(info.seed));
  out.Set("seconds", JsonValue(outcome.seconds));
  out.Set("retries", JsonValue(outcome.retries));
  out.Set("degraded", JsonValue(outcome.degraded));
  const JsonValue result = TrainResultJson(outcome.result);
  for (const auto& [key, value] : result.entries()) {
    out.Set(key, value);
  }
  // The outcome-level flags win over the raw result's: the harness's retry
  // ladder may drop a trial (failed) whose last TrainResult succeeded.
  out.Set("failed", JsonValue(outcome.failed));
  out.Set("failure_reason", outcome.failure_reason.empty()
                                ? JsonValue::Null()
                                : JsonValue(outcome.failure_reason));
  out.Set("timed_out", JsonValue(outcome.timed_out));
  return out;
}

JsonValue AggregateJson(const Aggregate& aggregate) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("best", ScoresJson(aggregate.best));
  out.Set("mean", ScoresJson(aggregate.mean));
  out.Set("stddev", ScoresJson(aggregate.stddev));
  out.Set("best_seconds", JsonValue(aggregate.best_seconds));
  out.Set("mean_seconds", JsonValue(aggregate.mean_seconds));
  out.Set("var_seconds", JsonValue(aggregate.var_seconds));
  out.Set("num_trials", JsonValue(aggregate.num_trials));
  out.Set("dropped_trials", JsonValue(aggregate.dropped_trials));
  out.Set("timed_out_trials", JsonValue(aggregate.timed_out_trials));
  out.Set("retried_trials", JsonValue(aggregate.retried_trials));
  out.Set("degraded_trials", JsonValue(aggregate.degraded_trials));
  return out;
}

JsonValue BenchDocument(const std::string& bench_name,
                        std::vector<JsonValue> trial_reports) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("schema", JsonValue("rgae.bench.v1"));
  doc.Set("bench", JsonValue(bench_name));
  JsonValue trials = JsonValue::MakeArray();
  for (JsonValue& report : trial_reports) trials.Append(std::move(report));
  doc.Set("trials", std::move(trials));
  // The ISA every kernel stub dispatched to while this document's numbers
  // were produced ("scalar" / "avx2" / "avx512"), exported both as a
  // top-level field and as the kernel.isa_level gauge.
  const kernels::Isa isa = kernels::SelectedIsa();
  doc.Set("kernel_isa", JsonValue(kernels::IsaName(isa)));
  MetricsRegistry::Global()
      .GetGauge("kernel.isa_level")
      ->Set(static_cast<double>(kernels::IsaLevel(isa)));
  // Memory first: MemoryReportJson refreshes the mem.* gauges, which the
  // metrics snapshot below should include.
  doc.Set("memory", MemoryReportJson());
  doc.Set("metrics", MetricsRegistry::Global().ToJson());
  doc.Set("profile", Profiler::Global().ToJson());
  doc.Set("dropped_trace_events",
          JsonValue(TraceCollector::Global().dropped()));
  return doc;
}

bool WriteJsonFile(const JsonValue& doc, const std::string& path,
                   std::string* error) {
  return WriteFileAtomic(path, doc.Dump(2) + "\n", error);
}

}  // namespace obs
}  // namespace rgae
