#include "src/obs/metrics.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace rgae {
namespace obs {

namespace {

struct EnabledState {
  std::atomic<bool> enabled{false};
  bool forced_off = false;

  EnabledState() {
    const char* env = std::getenv("RGAE_OBS_ENABLED");
    if (env == nullptr) return;
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0) {
      forced_off = true;
      return;
    }
    enabled.store(true, std::memory_order_relaxed);
  }
};

EnabledState& State() {
  static EnabledState state;
  return state;
}

}  // namespace

bool Enabled() {
  return State().enabled.load(std::memory_order_relaxed);
}

void SetEnabled(bool enabled) {
  EnabledState& s = State();
  if (enabled && s.forced_off) return;  // RGAE_OBS_ENABLED=0 wins.
  s.enabled.store(enabled, std::memory_order_relaxed);
}

void Histogram::Observe(double v) {
  MutexLock lock(mu_);
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  ++buckets_[BucketIndex(v)];
}

int64_t Histogram::count() const {
  MutexLock lock(mu_);
  return count_;
}

double Histogram::sum() const {
  MutexLock lock(mu_);
  return sum_;
}

double Histogram::min() const {
  MutexLock lock(mu_);
  return min_;
}

double Histogram::max() const {
  MutexLock lock(mu_);
  return max_;
}

double Histogram::mean() const {
  MutexLock lock(mu_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

int64_t Histogram::bucket_count(int i) const {
  MutexLock lock(mu_);
  return buckets_[i];
}

double Histogram::BucketUpperBound(int i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, i);  // 2^i.
}

int Histogram::BucketIndex(double v) {
  for (int i = 0; i < kNumBuckets - 1; ++i) {
    if (v <= BucketUpperBound(i)) return i;
  }
  return kNumBuckets - 1;
}

void Histogram::Reset() {
  MutexLock lock(mu_);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  buckets_.fill(0);
}

JsonValue Histogram::ToJson() const {
  MutexLock lock(mu_);
  JsonValue out = JsonValue::MakeObject();
  out.Set("count", JsonValue(count_));
  out.Set("sum", JsonValue(sum_));
  out.Set("min", JsonValue(min_));
  out.Set("max", JsonValue(max_));
  out.Set("mean",
          JsonValue(count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0));
  JsonValue buckets = JsonValue::MakeArray();
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    JsonValue b = JsonValue::MakeObject();
    b.Set("le", i == kNumBuckets - 1 ? JsonValue::Null()
                                     : JsonValue(BucketUpperBound(i)));
    b.Set("count", JsonValue(buckets_[i]));
    buckets.Append(std::move(b));
  }
  out.Set("buckets", std::move(buckets));
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Never dies.
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto it = counter_names_.find(name);
  if (it != counter_names_.end()) return it->second;
  counters_.emplace_back();
  Counter* c = &counters_.back();
  counter_names_[name] = c;
  return c;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto it = gauge_names_.find(name);
  if (it != gauge_names_.end()) return it->second;
  gauges_.emplace_back();
  Gauge* g = &gauges_.back();
  gauge_names_[name] = g;
  return g;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto it = histogram_names_.find(name);
  if (it != histogram_names_.end()) return it->second;
  histograms_.emplace_back();
  Histogram* h = &histograms_.back();
  histogram_names_[name] = h;
  return h;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (Counter& c : counters_) c.Reset();
  for (Gauge& g : gauges_) g.Reset();
  for (Histogram& h : histograms_) h.Reset();
}

JsonValue MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  JsonValue out = JsonValue::MakeObject();
  JsonValue counters = JsonValue::MakeObject();
  for (const auto& [name, c] : counter_names_) {
    counters.Set(name, JsonValue(c->value()));
  }
  out.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::MakeObject();
  for (const auto& [name, g] : gauge_names_) {
    gauges.Set(name, JsonValue(g->value()));
  }
  out.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::MakeObject();
  for (const auto& [name, h] : histogram_names_) {
    histograms.Set(name, h->ToJson());
  }
  out.Set("histograms", std::move(histograms));
  return out;
}

}  // namespace obs
}  // namespace rgae
