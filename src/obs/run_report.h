#ifndef RGAE_OBS_RUN_REPORT_H_
#define RGAE_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/eval/harness.h"
#include "src/obs/json.h"

namespace rgae {
namespace obs {

/// Machine-readable run reports: one JSON document per trial, assembled
/// from a `TrialOutcome` / `TrainResult` plus identifying metadata, and a
/// top-level bench document (`rgae.bench.v1`) bundling the trial reports
/// with a `MetricsRegistry` snapshot. `bench_common.h` wires this into
/// every bench binary behind `--json=<path>`;
/// `scripts/check_bench_json.py` schema-checks the output.

/// Identifies one trial inside a bench run.
struct RunReportInfo {
  std::string model;    // "GAE", … (empty when not applicable).
  std::string dataset;  // Registry name.
  std::string variant;  // "base" or "r".
  int trial = 0;
  uint64_t seed = 0;
};

/// One trace row. Untracked sentinel fields (-1 scores, -2 Λ diagnostics,
/// -1 dynamics counters) are emitted as JSON `null`, never as their
/// sentinel values, so downstream plots cannot ingest them as data.
JsonValue EpochRecordJson(const EpochRecord& record);

/// Scores + timing + resilience outcome + per-epoch trace of one run.
JsonValue TrainResultJson(const TrainResult& result);

/// Full per-trial document: info + TrainResultJson fields.
JsonValue RunReportJson(const RunReportInfo& info, const TrialOutcome& outcome);

/// Aggregate block mirroring `rgae::Aggregate` (best/mean/stddev scores,
/// timing, survivor counts).
JsonValue AggregateJson(const Aggregate& aggregate);

/// Top-level bench document:
/// {"schema":"rgae.bench.v1","bench":…,"trials":[…],"memory":{…},
///  "metrics":{…},"profile":{…},"dropped_trace_events":…}. `trials`
/// entries must come from `RunReportJson`; `memory` is
/// `MemoryReportJson()` and `profile` is `Profiler::ToJson()`.
JsonValue BenchDocument(const std::string& bench_name,
                        std::vector<JsonValue> trial_reports);

/// Writes `doc.Dump(2)` to `path`. Returns false on I/O error.
bool WriteJsonFile(const JsonValue& doc, const std::string& path,
                   std::string* error = nullptr);

}  // namespace obs
}  // namespace rgae

#endif  // RGAE_OBS_RUN_REPORT_H_
