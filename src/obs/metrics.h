#ifndef RGAE_OBS_METRICS_H_
#define RGAE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "src/obs/json.h"
#include "src/util/sync.h"

namespace rgae {
namespace obs {

/// Process-wide observability master switch. All instrumented hot paths
/// (SpMM, dense matmul, tape dispatch, Ξ/Υ, checkpointing, ...) guard on
/// `Enabled()` — one relaxed atomic-bool load — so a disabled build path
/// costs a single well-predicted branch per call.
///
/// Initial state comes from the `RGAE_OBS_ENABLED` environment variable:
/// unset, "0" or "false" → off, anything else → on. `RGAE_OBS_ENABLED=0`
/// additionally *forces* instrumentation off: `SetEnabled(true)` becomes a
/// no-op so perf baselines cannot be polluted by a stray `--json` flag.
bool Enabled();
void SetEnabled(bool enabled);

/// Monotonically increasing counter. Pointers returned by the registry are
/// stable for the process lifetime; cache them in a function-local static.
class Counter {
 public:
  void Inc(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins scalar.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Exponential-bucket histogram (base 2, bucket i has upper bound 2^i with
/// a final overflow bucket), tracking count / sum / min / max alongside the
/// bucket counts. Designed for microsecond wall times but unit-agnostic.
class Histogram {
 public:
  static constexpr int kNumBuckets = 32;  // le 1, 2, 4, ..., 2^30, +inf.

  void Observe(double v);

  int64_t count() const;
  double sum() const;
  double min() const;  // 0 when empty.
  double max() const;  // 0 when empty.
  double mean() const;
  int64_t bucket_count(int i) const;
  /// Upper bound of bucket `i`; the last bucket returns +inf.
  static double BucketUpperBound(int i);
  /// Index of the bucket `v` lands in.
  static int BucketIndex(double v);

  void Reset();

  /// {"count":…, "sum":…, "min":…, "max":…, "mean":…,
  ///  "buckets":[{"le":2,"count":…}, …, {"le":null,"count":…}]}
  /// (only non-empty buckets are emitted).
  JsonValue ToJson() const;

 private:
  mutable Mutex mu_{"Histogram.mu"};
  int64_t count_ RGAE_GUARDED_BY(mu_) = 0;
  double sum_ RGAE_GUARDED_BY(mu_) = 0.0;
  double min_ RGAE_GUARDED_BY(mu_) = 0.0;
  double max_ RGAE_GUARDED_BY(mu_) = 0.0;
  std::array<int64_t, kNumBuckets> buckets_ RGAE_GUARDED_BY(mu_){};
};

/// Thread-safe global registry of named metrics. Metric objects are
/// created on first lookup and never destroyed or moved, so hot paths can
/// resolve a name once and keep the pointer. `Reset` zeroes every metric in
/// place (pointers stay valid) — used by tests and bench sessions to scope
/// a measurement window.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  void Reset();

  /// {"counters":{name:value,…}, "gauges":{…}, "histograms":{name:{…},…}},
  /// names sorted for deterministic output.
  JsonValue ToJson() const;

 private:
  MetricsRegistry() = default;

  mutable Mutex mu_{"MetricsRegistry.mu"};
  // Deques give pointer stability; the maps only resolve names to slots.
  // Metric objects handed out are internally synchronized (atomics or the
  // Histogram mutex), so callers never need mu_.
  std::deque<Counter> counters_ RGAE_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ RGAE_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ RGAE_GUARDED_BY(mu_);
  std::map<std::string, Counter*> counter_names_ RGAE_GUARDED_BY(mu_);
  std::map<std::string, Gauge*> gauge_names_ RGAE_GUARDED_BY(mu_);
  std::map<std::string, Histogram*> histogram_names_ RGAE_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace rgae

#endif  // RGAE_OBS_METRICS_H_
