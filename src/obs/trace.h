#ifndef RGAE_OBS_TRACE_H_
#define RGAE_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/util/sync.h"

namespace rgae {
namespace obs {

/// Span recording switch, independent of the metrics switch: histograms are
/// cheap and bounded, but a full trace of every kernel call can grow large,
/// so spans are only captured when a trace sink was requested
/// (`--trace=…` in benches, or `SetTraceEnabled(true)` in tests). A span is
/// recorded only when `Enabled() && TraceEnabled()`.
bool TraceEnabled();
void SetTraceEnabled(bool enabled);

/// Monotonic microseconds since the first observability use in the process.
int64_t NowMicros();

/// One completed (or still-open) span. `parent` indexes the enclosing span
/// in the collector's event list (-1 for roots); `depth` is the nesting
/// level. `dur_us` is -1 while the span is open.
struct TraceEvent {
  std::string name;
  int64_t start_us = 0;
  int64_t dur_us = -1;
  int depth = 0;
  int parent = -1;
  uint64_t tid = 0;
};

/// Global trace-tree collector with Chrome `trace_event` JSON export.
/// Events are capped (`kMaxEvents`); past the cap new spans are counted in
/// `dropped()` instead of recorded, so a long training run cannot exhaust
/// memory. Thread nesting is tracked per thread via a thread-local stack.
class TraceCollector {
 public:
  static constexpr size_t kMaxEvents = 1u << 20;

  static TraceCollector& Global();

  /// Opens a span; returns its event index, or -1 when dropped (cap hit).
  int BeginSpan(const char* name);
  /// Closes the span opened as `index` (no-op for -1).
  void EndSpan(int index);

  std::vector<TraceEvent> Snapshot() const;
  size_t size() const;
  int64_t dropped() const;
  void Clear();

  /// Chrome `chrome://tracing` / Perfetto-compatible document:
  /// {"traceEvents":[{"name":…,"ph":"X","ts":…,"dur":…,"pid":0,"tid":…},…],
  ///  "displayTimeUnit":"ms"}. Open spans are exported with dur 0.
  JsonValue ChromeTraceJson() const;
  /// Serializes `ChromeTraceJson` to `path`. Returns false on I/O error.
  bool WriteChromeTrace(const std::string& path,
                        std::string* error = nullptr) const;

 private:
  TraceCollector() = default;

  mutable Mutex mu_{"TraceCollector.mu"};
  std::vector<TraceEvent> events_ RGAE_GUARDED_BY(mu_);
  int64_t dropped_ RGAE_GUARDED_BY(mu_) = 0;
};

/// RAII span: opens on construction, closes on destruction. Inactive (two
/// branch instructions total) when observability or tracing is off. When
/// `hist` is non-null the span duration in microseconds is also observed
/// into the histogram whenever `Enabled()` — even with tracing off — which
/// is how the per-kernel wall-time histograms are fed. When
/// `ProfileEnabled()` the span also opens a `Profiler` scope, building the
/// calling-context tree.
///
/// The destructor runs during exception unwinding too, so a span that
/// throws mid-scope still closes its trace event and profiler scope — and
/// it must never itself throw while another exception is in flight, so
/// every sink close is wrapped: a failing sink loses one observation, not
/// the process.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, Histogram* hist = nullptr)
      : hist_(hist) {
    if (!Enabled()) return;
    start_us_ = NowMicros();
    if (TraceEnabled()) index_ = TraceCollector::Global().BeginSpan(name);
    if (ProfileEnabled()) scope_ = Profiler::Global().BeginScope(name);
  }
  ~ScopedTimer() noexcept {
    if (start_us_ < 0) return;
    // Monotonic guard: NowMicros is steady, but clamp anyway so a
    // zero-resolution tick (or any clock surprise) can never record a
    // negative duration into the histogram, trace, or profile.
    const int64_t elapsed = NowMicros() - start_us_;
    const int64_t dur_us = elapsed > 0 ? elapsed : 0;
    try {
      if (index_ >= 0) TraceCollector::Global().EndSpan(index_);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    try {
      if (scope_ != nullptr) Profiler::Global().EndScope(scope_, dur_us);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    try {
      if (hist_ != nullptr) hist_->Observe(static_cast<double>(dur_us));
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  int64_t start_us_ = -1;  // -1 = inactive.
  int index_ = -1;
  Profiler::Node* scope_ = nullptr;
};

#define RGAE_OBS_CONCAT_INNER_(a, b) a##b
#define RGAE_OBS_CONCAT_(a, b) RGAE_OBS_CONCAT_INNER_(a, b)

/// Opens a trace span for the rest of the enclosing scope.
#define RGAE_SPAN(name) \
  ::rgae::obs::ScopedTimer RGAE_OBS_CONCAT_(rgae_span_, __LINE__)(name)

/// Opens a span AND feeds the duration into the histogram `name ## ".us"`.
/// The histogram pointer is resolved once per call site.
#define RGAE_TIMED_KERNEL(name)                                              \
  static ::rgae::obs::Histogram* const RGAE_OBS_CONCAT_(rgae_hist_,          \
                                                        __LINE__) =          \
      ::rgae::obs::MetricsRegistry::Global().GetHistogram(                   \
          ::std::string(name) + ".us");                                      \
  ::rgae::obs::ScopedTimer RGAE_OBS_CONCAT_(rgae_kspan_, __LINE__)(          \
      name, RGAE_OBS_CONCAT_(rgae_hist_, __LINE__))

/// Increments the counter `name` (resolved once per call site) when
/// observability is enabled.
#define RGAE_COUNT(name)                                                \
  do {                                                                  \
    if (::rgae::obs::Enabled()) {                                       \
      static ::rgae::obs::Counter* const rgae_counter_ =                \
          ::rgae::obs::MetricsRegistry::Global().GetCounter(name);      \
      rgae_counter_->Inc();                                             \
    }                                                                   \
  } while (0)

}  // namespace obs
}  // namespace rgae

#endif  // RGAE_OBS_TRACE_H_
