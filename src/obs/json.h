#ifndef RGAE_OBS_JSON_H_
#define RGAE_OBS_JSON_H_

#include <string>
#include <utility>
#include <vector>

namespace rgae {
namespace obs {

/// Minimal owning JSON document used by the observability layer: metric
/// snapshots, run reports, Chrome traces and JSONL log records are all
/// assembled as `JsonValue` trees and serialized with `Dump`. A small
/// recursive-descent `Parse` exists so tests (and the schema validator)
/// can round-trip what the emitters wrote; it is not a general-purpose
/// high-performance parser and none of the hot paths touch it.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Defaults to null.
  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}            // NOLINT
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}      // NOLINT
  JsonValue(int i) : JsonValue(static_cast<double>(i)) {}        // NOLINT
  JsonValue(long l) : JsonValue(static_cast<double>(l)) {}       // NOLINT
  JsonValue(long long l) : JsonValue(static_cast<double>(l)) {}  // NOLINT
  JsonValue(unsigned u) : JsonValue(static_cast<double>(u)) {}   // NOLINT
  JsonValue(unsigned long u)                                     // NOLINT
      : JsonValue(static_cast<double>(u)) {}
  JsonValue(unsigned long long u)                                // NOLINT
      : JsonValue(static_cast<double>(u)) {}
  JsonValue(std::string s)                                       // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}        // NOLINT

  static JsonValue MakeArray() { return JsonValue(Type::kArray); }
  static JsonValue MakeObject() { return JsonValue(Type::kObject); }
  static JsonValue Null() { return JsonValue(); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }

  /// Array access. `Append` asserts the value is an array.
  void Append(JsonValue v);
  size_t size() const { return items_.size(); }
  const JsonValue& at(size_t i) const { return items_[i]; }
  const std::vector<JsonValue>& items() const { return items_; }

  /// Object access. Insertion order is preserved; `Set` replaces an
  /// existing key in place. `Get` returns null when the key is absent.
  void Set(const std::string& key, JsonValue v);
  const JsonValue* Get(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& entries() const {
    return entries_;
  }

  /// Serializes to a string. `indent < 0` emits compact one-line JSON;
  /// otherwise pretty-prints with that many spaces per level. Non-finite
  /// numbers serialize as `null` (JSON has no NaN/inf).
  std::string Dump(int indent = -1) const;

  /// Parses `text` into `*out`. Returns false (filling `*error` when
  /// non-null) on malformed input, including trailing garbage.
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error = nullptr);

 private:
  explicit JsonValue(Type t) : type_(t) {}

  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> entries_;
};

/// Appends the JSON escaping of `s` (quotes included) to `*out`.
void AppendJsonQuoted(const std::string& s, std::string* out);

}  // namespace obs
}  // namespace rgae

#endif  // RGAE_OBS_JSON_H_
