#ifndef RGAE_OBS_PROFILE_H_
#define RGAE_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/util/sync.h"

namespace rgae {
namespace obs {

/// Profiling switch, independent of the metrics and trace switches: the
/// calling-context tree costs one map lookup per span open, so it is only
/// built when a bench requested a `--json` report (or a test asked for it).
/// A scope is recorded only when `Enabled() && ProfileEnabled()`.
bool ProfileEnabled();
void SetProfileEnabled(bool enabled);

/// Aggregated view of one calling-context-tree node, produced by
/// `Profiler::Snapshot`. `exclusive_us` is inclusive time minus the
/// inclusive time of all children (clamped at zero: children overlapping
/// their parent across threads can otherwise over-subtract).
struct ProfileNode {
  std::string name;
  int64_t calls = 0;
  int64_t inclusive_us = 0;
  int64_t exclusive_us = 0;
  int64_t flops = 0;
  int64_t bytes = 0;
  std::vector<ProfileNode> children;  // Sorted by name.
};

/// Hierarchical self-profiler: aggregates `ScopedTimer` spans into a
/// calling-context tree keyed by (parent node, span name), with per-node
/// call counts, inclusive/exclusive wall time, and the FLOP/byte work
/// reported by `RGAE_KERNEL_WORK` annotations in the kernels. The same
/// kernel reached through different call paths gets one node per path —
/// attribution, not just totals (DESIGN.md §6.6).
///
/// Nesting is tracked with a per-thread stack of open nodes; each thread
/// grows its own subtree under the roots it opens. Node storage is
/// append-only and `Reset()` retires (never frees) the old tree, so node
/// pointers held by in-flight `ScopedTimer`s stay valid for the process
/// lifetime and the hot path never takes the structure mutex after a
/// (parent, name) pair has been interned.
class Profiler {
 public:
  struct Node;  // Opaque to callers; stable address for the process life.

  static Profiler& Global();

  /// Opens a scope named `name` under the calling thread's innermost open
  /// scope (a root when none is open). Returns null when profiling is off.
  Node* BeginScope(const char* name);
  /// Closes `node` (no-op for null), adding `dur_us` to its inclusive time
  /// and bumping its call count. Tolerates scopes abandoned by exceptions:
  /// the thread stack is popped through to the matching frame.
  void EndScope(Node* node, int64_t dur_us);

  /// Attributes `flops`/`bytes` of kernel work to the calling thread's
  /// innermost open scope, or to the "(unattributed)" root when no scope
  /// is open. No-op when profiling is off.
  void AddWork(int64_t flops, int64_t bytes);

  /// Retires the current tree and starts an empty one. In-flight scopes
  /// keep writing into the retired tree (harmless; it is never reported).
  void Reset();

  /// Copies the current tree (roots sorted by name).
  std::vector<ProfileNode> Snapshot() const;

  /// {"enabled":…, "nodes":[{name, calls, inclusive_us, exclusive_us,
  ///  flops, bytes, gflops, gbs, children:[…]}, …]} — the `profile` block
  /// of the rgae.bench.v1 document. `gflops`/`gbs` are achieved rates over
  /// inclusive time (0 when no work or no time was recorded).
  JsonValue ToJson() const;

 private:
  Profiler() = default;

  Node* Intern(Node* parent, const char* name);
  Node* UnattributedRoot();

  mutable Mutex mu_{"Profiler.mu"};
  std::vector<std::unique_ptr<Node>> nodes_ RGAE_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Node>> retired_ RGAE_GUARDED_BY(mu_);
  std::map<std::string, Node*> roots_ RGAE_GUARDED_BY(mu_);
  // Bumped by Reset(); thread-local scope stacks self-clear on mismatch.
  std::atomic<uint64_t> epoch_{1};
};

/// Reports the nominal arithmetic (`flops`) and memory traffic (`bytes`)
/// of one kernel invocation: feeds the `<name>.flops` / `<name>.bytes`
/// counters and the profiler's innermost open scope. The cost models are
/// closed-form per kernel (DESIGN.md §6.6) so tests can assert exact
/// counts; `flops`/`bytes` are evaluated only when observability is on.
#define RGAE_KERNEL_WORK(name, flops, bytes)                               \
  do {                                                                     \
    if (::rgae::obs::Enabled()) {                                          \
      static ::rgae::obs::Counter* const rgae_work_flops_ =                \
          ::rgae::obs::MetricsRegistry::Global().GetCounter(               \
              ::std::string(name) + ".flops");                             \
      static ::rgae::obs::Counter* const rgae_work_bytes_ =                \
          ::rgae::obs::MetricsRegistry::Global().GetCounter(               \
              ::std::string(name) + ".bytes");                             \
      const ::std::int64_t rgae_work_f_ = (flops);                         \
      const ::std::int64_t rgae_work_b_ = (bytes);                         \
      rgae_work_flops_->Inc(rgae_work_f_);                                 \
      rgae_work_bytes_->Inc(rgae_work_b_);                                 \
      ::rgae::obs::Profiler::Global().AddWork(rgae_work_f_, rgae_work_b_); \
    }                                                                      \
  } while (0)

}  // namespace obs
}  // namespace rgae

#endif  // RGAE_OBS_PROFILE_H_
