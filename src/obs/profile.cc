#include "src/obs/profile.h"

#include <algorithm>
#include <utility>

namespace rgae {
namespace obs {

/// Tree node. Counters are atomics so EndScope/AddWork never take the
/// structure mutex; the children map is guarded by `Profiler::mu_`.
struct Profiler::Node {
  std::string name;
  Node* parent = nullptr;
  std::atomic<int64_t> calls{0};
  std::atomic<int64_t> inclusive_us{0};
  std::atomic<int64_t> flops{0};
  std::atomic<int64_t> bytes{0};
  std::map<std::string, Node*> children;  // Guarded by Profiler::mu_.
};

namespace {

std::atomic<bool> g_profile_enabled{false};

/// Per-thread stack of open profile nodes. `epoch` detects a Profiler
/// Reset() between pushes: a stale stack would parent new scopes under
/// retired nodes, so it is discarded wholesale on mismatch.
struct ThreadScopeStack {
  uint64_t epoch = 0;
  std::vector<Profiler::Node*> stack;
};
thread_local ThreadScopeStack t_scope_stack;

constexpr const char* kUnattributed = "(unattributed)";

}  // namespace

bool ProfileEnabled() {
  return g_profile_enabled.load(std::memory_order_relaxed);
}

void SetProfileEnabled(bool enabled) {
  g_profile_enabled.store(enabled, std::memory_order_relaxed);
}

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();  // Never dies.
  return *profiler;
}

Profiler::Node* Profiler::Intern(Node* parent, const char* name) {
  MutexLock lock(mu_);
  std::map<std::string, Node*>& siblings =
      parent == nullptr ? roots_ : parent->children;
  auto it = siblings.find(name);
  if (it != siblings.end()) return it->second;
  nodes_.push_back(std::make_unique<Node>());
  Node* node = nodes_.back().get();
  node->name = name;
  node->parent = parent;
  siblings.emplace(name, node);
  return node;
}

Profiler::Node* Profiler::BeginScope(const char* name) {
  if (!ProfileEnabled()) return nullptr;
  ThreadScopeStack& ts = t_scope_stack;
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (ts.epoch != epoch) {
    ts.stack.clear();
    ts.epoch = epoch;
  }
  Node* parent = ts.stack.empty() ? nullptr : ts.stack.back();
  Node* node = Intern(parent, name);
  ts.stack.push_back(node);
  return node;
}

void Profiler::EndScope(Node* node, int64_t dur_us) {
  if (node == nullptr) return;
  ThreadScopeStack& ts = t_scope_stack;
  if (ts.epoch == epoch_.load(std::memory_order_acquire)) {
    // Pop through to the matching frame: a child scope abandoned by an
    // exception (its timer destroyed out of order) must not leave the
    // stack pointing at a closed node.
    while (!ts.stack.empty()) {
      Node* top = ts.stack.back();
      ts.stack.pop_back();
      if (top == node) break;
    }
  }
  node->calls.fetch_add(1, std::memory_order_relaxed);
  node->inclusive_us.fetch_add(dur_us, std::memory_order_relaxed);
}

Profiler::Node* Profiler::UnattributedRoot() {
  return Intern(nullptr, kUnattributed);
}

void Profiler::AddWork(int64_t flops, int64_t bytes) {
  if (!ProfileEnabled()) return;
  ThreadScopeStack& ts = t_scope_stack;
  Node* target = nullptr;
  if (ts.epoch == epoch_.load(std::memory_order_acquire) &&
      !ts.stack.empty()) {
    target = ts.stack.back();
  }
  if (target == nullptr) target = UnattributedRoot();
  target->flops.fetch_add(flops, std::memory_order_relaxed);
  target->bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void Profiler::Reset() {
  MutexLock lock(mu_);
  // Retire rather than free: in-flight ScopedTimers still hold pointers
  // into the old tree, and their late EndScope writes must stay valid
  // (they land in the retired tree, which is never reported).
  for (std::unique_ptr<Node>& node : nodes_) {
    retired_.push_back(std::move(node));
  }
  nodes_.clear();
  roots_.clear();
  epoch_.fetch_add(1, std::memory_order_release);
}

namespace {

ProfileNode SnapshotNode(const Profiler::Node& node);

ProfileNode SnapshotNode(const Profiler::Node& node) {
  ProfileNode out;
  out.name = node.name;
  out.calls = node.calls.load(std::memory_order_relaxed);
  out.inclusive_us = node.inclusive_us.load(std::memory_order_relaxed);
  out.flops = node.flops.load(std::memory_order_relaxed);
  out.bytes = node.bytes.load(std::memory_order_relaxed);
  int64_t children_inclusive = 0;
  for (const auto& [name, child] : node.children) {
    out.children.push_back(SnapshotNode(*child));
    children_inclusive += out.children.back().inclusive_us;
  }
  // Clamped: a child running on another thread can overlap (and so
  // overcount against) its parent's wall time.
  out.exclusive_us =
      std::max<int64_t>(0, out.inclusive_us - children_inclusive);
  return out;
}

JsonValue NodeJson(const ProfileNode& node) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("name", JsonValue(node.name));
  out.Set("calls", JsonValue(node.calls));
  out.Set("inclusive_us", JsonValue(node.inclusive_us));
  out.Set("exclusive_us", JsonValue(node.exclusive_us));
  out.Set("flops", JsonValue(node.flops));
  out.Set("bytes", JsonValue(node.bytes));
  const double us = static_cast<double>(node.inclusive_us);
  out.Set("gflops", JsonValue(node.flops > 0 && us > 0.0
                                  ? static_cast<double>(node.flops) /
                                        (us * 1e3)
                                  : 0.0));
  out.Set("gbs", JsonValue(node.bytes > 0 && us > 0.0
                               ? static_cast<double>(node.bytes) / (us * 1e3)
                               : 0.0));
  JsonValue children = JsonValue::MakeArray();
  for (const ProfileNode& child : node.children) {
    children.Append(NodeJson(child));
  }
  out.Set("children", std::move(children));
  return out;
}

}  // namespace

std::vector<ProfileNode> Profiler::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<ProfileNode> out;
  out.reserve(roots_.size());
  for (const auto& [name, node] : roots_) {
    out.push_back(SnapshotNode(*node));
  }
  return out;
}

JsonValue Profiler::ToJson() const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("enabled", JsonValue(Enabled() && ProfileEnabled()));
  JsonValue nodes = JsonValue::MakeArray();
  for (const ProfileNode& root : Snapshot()) {
    nodes.Append(NodeJson(root));
  }
  out.Set("nodes", std::move(nodes));
  return out;
}

}  // namespace obs
}  // namespace rgae
