#ifndef RGAE_OBS_MEMSTAT_H_
#define RGAE_OBS_MEMSTAT_H_

#include <cstddef>
#include <cstdint>

#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace rgae {
namespace obs {

/// Memory accounting (DESIGN.md §6.7): process-level RSS readings plus
/// allocation counters fed by the `Matrix` constructors and `Tape::Push`.
/// The counters are cumulative relaxed atomics behind the `Enabled()`
/// master switch — a disabled build path costs one well-predicted branch
/// per construction, same budget as the kernel instrumentation.

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status, falling back to getrusage). 0 when unavailable.
int64_t ReadPeakRssBytes();

/// Current resident set size in bytes (VmRSS). 0 when unavailable.
int64_t ReadCurrentRssBytes();

/// Cumulative allocation counters since process start (or the last
/// `ResetMemCounters`). `matrix_bytes` counts the true aligned buffer
/// footprint (entry payload rounded up to whole 64-byte lines, see
/// kernels/aligned.h); `tape_bytes` counts the double payloads (8 bytes
/// per entry). Neither includes allocator bookkeeping overhead.
struct MemCounters {
  int64_t matrix_allocs = 0;
  int64_t matrix_bytes = 0;
  int64_t tape_nodes = 0;
  int64_t tape_bytes = 0;
};

MemCounters MemCountersNow();
void ResetMemCounters();

namespace memstat_internal {
void RecordMatrixAlloc(size_t entries);
void RecordTapeNode(size_t value_entries);
}  // namespace memstat_internal

/// Hook for the shape-taking `Matrix` constructors (copies and moves are
/// not counted: the accounting tracks fresh buffer demand, not churn).
inline void CountMatrixAlloc(size_t entries) {
  if (Enabled()) memstat_internal::RecordMatrixAlloc(entries);
}

/// Hook for `Tape::Push`: one tape node plus its value payload.
inline void CountTapeNode(size_t value_entries) {
  if (Enabled()) memstat_internal::RecordTapeNode(value_entries);
}

/// Publishes the RSS readings and allocation counters as gauges
/// (mem.peak_rss_bytes, mem.current_rss_bytes, mem.matrix_allocs,
/// mem.matrix_bytes, mem.tape_nodes, mem.tape_bytes) so they appear in
/// the standard `MetricsRegistry` snapshot.
void UpdateMemoryGauges();

/// The `memory` block of the rgae.bench.v1 document:
/// {"peak_rss_bytes":…, "current_rss_bytes":…, "matrix_allocs":…,
///  "matrix_bytes":…, "tape_nodes":…, "tape_bytes":…}.
/// Also refreshes the gauges (`UpdateMemoryGauges`).
JsonValue MemoryReportJson();

}  // namespace obs
}  // namespace rgae

#endif  // RGAE_OBS_MEMSTAT_H_
