#include "src/eval/table.h"

#include <cstdio>
#include <iostream>

namespace rgae {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(const std::string& title) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::cout << "\n== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::cout << cell;
      if (c + 1 < widths.size()) {
        std::cout << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    std::cout << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::cout << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

std::string FormatPct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", fraction * 100.0);
  return buf;
}

std::string FormatMeanStd(double mean_fraction, double std_fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f +/- %.1f", mean_fraction * 100.0,
                std_fraction * 100.0);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

}  // namespace rgae
