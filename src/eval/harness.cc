#include "src/eval/harness.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "src/obs/log.h"
#include "src/obs/trace.h"

namespace rgae {

namespace {

// Raw timing: trial wall-clock is a product field on TrialOutcome, not an
// obs span (R8 opt-out).
double Seconds(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)  // Raw timing: see above.
      .count();
}

int ScaledEpochs(int epochs) {
  const double scale = EpochScaleFromEnv();
  return std::max(1, static_cast<int>(epochs * scale));
}

// Copies the train result plus its failure state into a trial outcome, so
// AggregateTrials can exclude failed runs instead of poisoning the table.
TrialOutcome MakeOutcome(TrainResult result) {
  TrialOutcome outcome;
  outcome.failed = result.failed;
  outcome.failure_reason = result.failure_reason;
  outcome.timed_out = result.timed_out;
  outcome.scores = result.scores;
  outcome.seconds = result.cluster_seconds;
  outcome.result = std::move(result);
  return outcome;
}

// An attempt's outcome is usable when the run neither gave up numerically
// nor ran out of wall clock; anything else climbs the ladder.
bool AttemptOk(const TrialOutcome& outcome) {
  return !outcome.failed && !outcome.timed_out;
}

int ScaleEpochs(int epochs, double fraction) {
  return std::max(1, static_cast<int>(epochs * fraction));
}

// Trainer options of ladder attempt `attempt` (0 = the original run):
// deterministically perturbed seed, a fresh per-attempt deadline, and — on
// the degraded rung — reduced epoch counts.
TrainerOptions AttemptTrainerOptions(const TrainerOptions& base,
                                     const TrialPolicy& policy, int attempt,
                                     bool degraded) {
  TrainerOptions t = base;
  t.seed = base.seed + static_cast<uint64_t>(attempt) * kSeedPerturbation;
  t.deadline = Deadline::After(policy.deadline_seconds);
  if (degraded) {
    t.pretrain_epochs =
        ScaleEpochs(t.pretrain_epochs, policy.degraded_epoch_fraction);
    t.max_cluster_epochs =
        ScaleEpochs(t.max_cluster_epochs, policy.degraded_epoch_fraction);
    // The first-group transform start scales with its phase so the R-model
    // protocol keeps the same shape inside the shrunken schedule.
    t.first_group_transform_start = static_cast<int>(
        t.first_group_transform_start * policy.degraded_epoch_fraction);
  }
  return t;
}

// Stamps the ladder accounting onto the outcome that leaves the ladder.
void StampLadder(TrialOutcome* outcome, int retries, bool degraded) {
  outcome->retries = retries;
  outcome->degraded = degraded;
}

// Final rung: the trial is dropped with a structured reason naming every
// rung it burned through.
void DropTrial(TrialOutcome* outcome, int attempts, bool degraded_tried,
               int trial_id) {
  const std::string cause = outcome->timed_out
                                ? "deadline exceeded"
                                : (outcome->failure_reason.empty()
                                       ? "run failed"
                                       : outcome->failure_reason);
  outcome->failed = true;
  outcome->failure_reason =
      "dropped after " + std::to_string(attempts) + " attempt(s)" +
      (degraded_tried ? " incl. degraded mode" : "") + ": " + cause;
  RGAE_COUNT("harness.dropped_trials");
  RGAE_LOG(kError)
      .Event("harness.trial_dropped")
      .Field("trial", trial_id)
      .Field("attempts", attempts)
      .Field("degraded_tried", degraded_tried)
      .Field("timed_out", outcome->timed_out)
      .Msg(outcome->failure_reason);
}

}  // namespace

TrialPolicy TrialPolicyFromEnv(TrialPolicy defaults) {
  if (const char* env = std::getenv("RGAE_TRIAL_DEADLINE_S")) {
    const double v = std::atof(env);
    if (v > 0.0) defaults.deadline_seconds = v;
  }
  if (const char* env = std::getenv("RGAE_TRIAL_RETRIES")) {
    const int v = std::atoi(env);
    if (v >= 0) defaults.max_retries = v;
  }
  return defaults;
}

int NumTrialsFromEnv(int default_trials) {
  const char* env = std::getenv("RGAE_TRIALS");
  if (env == nullptr) return default_trials;
  const int v = std::atoi(env);
  return v > 0 ? v : default_trials;
}

double EpochScaleFromEnv() {
  const char* env = std::getenv("RGAE_EPOCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

CoupleConfig MakeCoupleConfig(const std::string& model_name,
                              const std::string& dataset, uint64_t seed) {
  CoupleConfig config;
  config.model_name = model_name;
  config.dataset = dataset;
  config.model_options.seed = seed;

  TrainerOptions t;
  // Variational encoders need roughly twice the pretraining budget to
  // reach a comparable embedding quality (the sampling path is noisy).
  const bool variational = model_name == "VGAE" || model_name == "ARVGAE" ||
                           model_name == "GMM-VGAE";
  t.pretrain_epochs = ScaledEpochs(variational ? 200 : 100);
  t.max_cluster_epochs = ScaledEpochs(150);
  t.num_clusters = DatasetClusters(dataset);
  t.seed = seed * 2654435761ULL + 17;

  const RHyperParams rp = GetRHyperParams(dataset, model_name);
  config.base = t;
  config.base.use_operators = false;

  config.rvariant = t;
  config.rvariant.use_operators = true;
  config.rvariant.xi.alpha1 = rp.alpha1;
  config.rvariant.m1 = rp.m1;
  config.rvariant.m2 = rp.m2;
  // First-group models transform the reconstruction target during the
  // second half of pretraining.
  config.rvariant.first_group_transform_start = t.pretrain_epochs / 2;
  return config;
}

TrialOutcome RunSingle(const std::string& model_name,
                       const AttributedGraph& graph,
                       const ModelOptions& model_options,
                       const TrainerOptions& trainer) {
  std::unique_ptr<GaeModel> model =
      CreateModel(model_name, graph, model_options);
  assert(model != nullptr);
  RGaeTrainer t(model.get(), trainer);
  return MakeOutcome(t.Run());
}

CoupleOutcome RunCouple(const CoupleConfig& config,
                        const AttributedGraph& graph) {
  CoupleOutcome outcome;
  std::unique_ptr<GaeModel> base_model =
      CreateModel(config.model_name, graph, config.model_options);
  assert(base_model != nullptr);

  if (base_model->has_clustering_head()) {
    // Second group: pretrain once, share the weights, run both clustering
    // phases from the identical checkpoint. A failed shared pretrain fails
    // both halves of the couple.
    RGaeTrainer base_trainer(base_model.get(), config.base);
    const auto pre_begin = std::chrono::steady_clock::now();  // Raw timing: phase clock.
    const bool pretrain_ok = base_trainer.Pretrain();
    const double pretrain_seconds = Seconds(pre_begin);
    const std::vector<Matrix> weights = base_model->SaveWeights();

    outcome.base = MakeOutcome(base_trainer.TrainClustering());
    outcome.base.result.pretrain_seconds = pretrain_seconds;

    std::unique_ptr<GaeModel> r_model =
        CreateModel(config.model_name, graph, config.model_options);
    r_model->LoadWeights(weights);
    RGaeTrainer r_trainer(r_model.get(), config.rvariant);
    outcome.rmodel = MakeOutcome(r_trainer.TrainClustering());
    outcome.rmodel.result.pretrain_seconds = pretrain_seconds;
    if (!pretrain_ok) {
      outcome.rmodel.failed = true;
      outcome.rmodel.failure_reason =
          "shared pretrain failed: " + base_trainer.failure_reason();
    }
  } else {
    // First group: the operators act during pretraining, so the couple
    // shares the initial weights (same model seed) and the identical plain
    // prefix of the pretraining schedule.
    RGaeTrainer base_trainer(base_model.get(), config.base);
    outcome.base = MakeOutcome(base_trainer.Run());
    outcome.base.seconds = outcome.base.result.pretrain_seconds;

    std::unique_ptr<GaeModel> r_model =
        CreateModel(config.model_name, graph, config.model_options);
    RGaeTrainer r_trainer(r_model.get(), config.rvariant);
    outcome.rmodel = MakeOutcome(r_trainer.Run());
    outcome.rmodel.seconds = outcome.rmodel.result.pretrain_seconds;
  }
  return outcome;
}

TrialOutcome RunSingleWithPolicy(const std::string& model_name,
                                 const AttributedGraph& graph,
                                 const ModelOptions& model_options,
                                 const TrainerOptions& trainer,
                                 const TrialPolicy& policy) {
  TrialOutcome outcome;
  int attempt = 0;
  for (; attempt <= policy.max_retries; ++attempt) {
    ModelOptions m = model_options;
    m.seed += static_cast<uint64_t>(attempt) * kSeedPerturbation;
    const TrainerOptions t =
        AttemptTrainerOptions(trainer, policy, attempt, /*degraded=*/false);
    outcome = RunSingle(model_name, graph, m, t);
    if (AttemptOk(outcome) || GlobalStopRequested()) {
      StampLadder(&outcome, attempt, /*degraded=*/false);
      return outcome;
    }
    // An inert ladder (no retries, no degraded rung) passes the outcome
    // through untouched, so unconfigured benches behave exactly as before.
    if (policy.max_retries == 0 && !policy.allow_degraded) return outcome;
    RGAE_COUNT("harness.retries");
    RGAE_LOG(kWarn)
        .Event("harness.trial_retry")
        .Field("trial", trainer.trial_id)
        .Field("attempt", attempt)
        .Field("timed_out", outcome.timed_out)
        .Msg(outcome.failure_reason.empty() ? "attempt failed; retrying"
                                            : outcome.failure_reason);
  }
  if (policy.allow_degraded) {
    ModelOptions m = model_options;
    m.seed += static_cast<uint64_t>(attempt) * kSeedPerturbation;
    const TrainerOptions t =
        AttemptTrainerOptions(trainer, policy, attempt, /*degraded=*/true);
    outcome = RunSingle(model_name, graph, m, t);
    StampLadder(&outcome, attempt, /*degraded=*/true);
    if (AttemptOk(outcome) || GlobalStopRequested()) {
      RGAE_COUNT("harness.degraded_runs");
      return outcome;
    }
    ++attempt;
  } else {
    StampLadder(&outcome, attempt - 1, /*degraded=*/false);
  }
  DropTrial(&outcome, attempt, policy.allow_degraded, trainer.trial_id);
  return outcome;
}

CoupleOutcome RunCoupleWithPolicy(const CoupleConfig& config,
                                  const AttributedGraph& graph,
                                  const TrialPolicy& policy) {
  // The couple climbs the ladder as a unit: both halves re-run under the
  // same perturbed seed, keeping the shared-pretrain comparison honest.
  auto attempt_config = [&](int attempt, bool degraded) {
    CoupleConfig c = config;
    c.model_options.seed += static_cast<uint64_t>(attempt) * kSeedPerturbation;
    c.base = AttemptTrainerOptions(config.base, policy, attempt, degraded);
    c.rvariant =
        AttemptTrainerOptions(config.rvariant, policy, attempt, degraded);
    return c;
  };
  auto couple_ok = [](const CoupleOutcome& o) {
    return AttemptOk(o.base) && AttemptOk(o.rmodel);
  };

  CoupleOutcome outcome;
  int attempt = 0;
  for (; attempt <= policy.max_retries; ++attempt) {
    outcome = RunCouple(attempt_config(attempt, /*degraded=*/false), graph);
    if (couple_ok(outcome) || GlobalStopRequested()) {
      StampLadder(&outcome.base, attempt, /*degraded=*/false);
      StampLadder(&outcome.rmodel, attempt, /*degraded=*/false);
      return outcome;
    }
    // Inert ladder: pass failures through untouched (see RunSingleWithPolicy).
    if (policy.max_retries == 0 && !policy.allow_degraded) return outcome;
    RGAE_COUNT("harness.retries");
    RGAE_LOG(kWarn)
        .Event("harness.couple_retry")
        .Field("trial", config.base.trial_id)
        .Field("attempt", attempt)
        .Field("base_ok", AttemptOk(outcome.base))
        .Field("rmodel_ok", AttemptOk(outcome.rmodel))
        .Msg("couple attempt failed; retrying both halves");
  }
  if (policy.allow_degraded) {
    outcome = RunCouple(attempt_config(attempt, /*degraded=*/true), graph);
    StampLadder(&outcome.base, attempt, /*degraded=*/true);
    StampLadder(&outcome.rmodel, attempt, /*degraded=*/true);
    if (couple_ok(outcome) || GlobalStopRequested()) {
      RGAE_COUNT("harness.degraded_runs");
      return outcome;
    }
    ++attempt;
  } else {
    StampLadder(&outcome.base, attempt - 1, /*degraded=*/false);
    StampLadder(&outcome.rmodel, attempt - 1, /*degraded=*/false);
  }
  // Only the halves that are actually unusable get dropped; a healthy half
  // of a partially-failed couple still feeds its table column.
  if (!AttemptOk(outcome.base)) {
    DropTrial(&outcome.base, attempt, policy.allow_degraded,
              config.base.trial_id);
  }
  if (!AttemptOk(outcome.rmodel)) {
    DropTrial(&outcome.rmodel, attempt, policy.allow_degraded,
              config.rvariant.trial_id);
  }
  return outcome;
}

Aggregate AggregateTrials(const std::vector<TrialOutcome>& trials) {
  Aggregate agg;
  std::vector<const TrialOutcome*> alive;
  alive.reserve(trials.size());
  for (const TrialOutcome& t : trials) {
    if (t.timed_out) ++agg.timed_out_trials;
    if (t.retries > 0) ++agg.retried_trials;
    if (t.degraded) ++agg.degraded_trials;
    if (t.failed) {
      ++agg.dropped_trials;
    } else {
      alive.push_back(&t);
    }
  }
  if (agg.dropped_trials > 0) {
    // The first failure reason names the concrete cause; trial ids of all
    // dropped runs go into their own field so tables stay attributable.
    std::string dropped_ids;
    std::string first_reason;
    for (size_t i = 0; i < trials.size(); ++i) {
      if (!trials[i].failed) continue;
      if (!dropped_ids.empty()) dropped_ids += ",";
      dropped_ids += std::to_string(i);
      if (first_reason.empty()) first_reason = trials[i].failure_reason;
    }
    RGAE_LOG(kWarn)
        .Event("aggregate.dropped_trials")
        .Field("dropped", agg.dropped_trials)
        .Field("total", static_cast<long long>(trials.size()))
        .Field("survivors", static_cast<long long>(alive.size()))
        .Field("trials", dropped_ids)
        .Msg(first_reason);
  }
  agg.num_trials = static_cast<int>(alive.size());
  if (alive.empty()) return agg;  // Zeroed aggregate, never NaN.

  const TrialOutcome* best = alive[0];
  for (const TrialOutcome* t : alive) {
    if (t->scores.acc > best->scores.acc) best = t;
  }
  agg.best = best->scores;
  agg.best_seconds = alive[0]->seconds;
  double sum_acc = 0.0, sum_nmi = 0.0, sum_ari = 0.0, sum_sec = 0.0;
  for (const TrialOutcome* t : alive) {
    sum_acc += t->scores.acc;
    sum_nmi += t->scores.nmi;
    sum_ari += t->scores.ari;
    sum_sec += t->seconds;
    agg.best_seconds = std::min(agg.best_seconds, t->seconds);
    agg.trial_seconds.push_back(t->seconds);
  }
  const double n = static_cast<double>(alive.size());
  agg.mean = {sum_acc / n, sum_nmi / n, sum_ari / n};
  agg.mean_seconds = sum_sec / n;
  if (alive.size() < 2) return agg;  // Stddev of one trial is zero.
  double var_acc = 0.0, var_nmi = 0.0, var_ari = 0.0, var_sec = 0.0;
  for (const TrialOutcome* t : alive) {
    var_acc += (t->scores.acc - agg.mean.acc) * (t->scores.acc - agg.mean.acc);
    var_nmi += (t->scores.nmi - agg.mean.nmi) * (t->scores.nmi - agg.mean.nmi);
    var_ari += (t->scores.ari - agg.mean.ari) * (t->scores.ari - agg.mean.ari);
    var_sec +=
        (t->seconds - agg.mean_seconds) * (t->seconds - agg.mean_seconds);
  }
  agg.stddev = {std::sqrt(var_acc / n), std::sqrt(var_nmi / n),
                std::sqrt(var_ari / n)};
  agg.var_seconds = var_sec / n;
  return agg;
}

}  // namespace rgae
