#ifndef RGAE_EVAL_TABLE_H_
#define RGAE_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace rgae {

/// Minimal aligned-column table printer for the paper-style bench output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Prints the table to stdout with a title line above it.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "61.3" — a score in percent with one decimal (paper convention).
std::string FormatPct(double fraction);
/// "55.6 ± 4.9".
std::string FormatMeanStd(double mean_fraction, double std_fraction);
/// Fixed-precision double, e.g. "17.135".
std::string FormatSeconds(double seconds);

}  // namespace rgae

#endif  // RGAE_EVAL_TABLE_H_
