#ifndef RGAE_EVAL_RUN_JOURNAL_H_
#define RGAE_EVAL_RUN_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/eval/harness.h"
#include "src/models/model.h"

namespace rgae {

/// Crash-safe trial journal (`rgae.journal.v1`): an append-only JSONL file
/// with one record per *completed* trial, keyed by a deterministic hash of
/// everything that determines the trial's outcome. A bench run opened with
/// `--journal=<path>` appends each finished trial and, after a crash or
/// kill, skips every journaled trial on restart — replaying the recorded
/// outcomes so the resumed run's aggregates are bit-identical to an
/// uninterrupted one (doubles are serialized with %.17g, an exact
/// round-trip).
///
/// Durability: each record is flushed and fsync'd before `Append` returns,
/// so a trial is either fully journaled or not journaled at all. The file
/// itself is append-only on purpose (see util/fileio.h); a torn final line
/// — the one write a crash can interrupt — is detected and ignored on
/// load, costing at most one re-run trial.

/// One journal record: the identity of the trial plus its replayable
/// outcome (scores, timings, and the full failure/retry accounting).
struct JournalRecord {
  std::string key;      // TrialConfigKey of the run that produced it.
  std::string model;    // "GAE", ...
  std::string dataset;  // Registry name.
  std::string variant;  // "base" or "r".
  int trial = 0;
  uint64_t seed = 0;
  TrialOutcome outcome;
};

/// Deterministic 64-bit FNV-1a hash over the canonical serialization of
/// every outcome-affecting knob: the model and dataset names, the variant,
/// the trial index, all `ModelOptions` fields, and the `TrainerOptions`
/// schedule/operator/seed fields. Observability switches (`track_*`), the
/// resilience policy, fault injectors, `trial_id`, and the deadline are
/// excluded — they do not change what a *completed* healthy trial computes,
/// and a journal must survive being resumed under a different budget.
uint64_t TrialConfigHash(const std::string& model, const std::string& dataset,
                         const std::string& variant, int trial,
                         const ModelOptions& model_options,
                         const TrainerOptions& trainer);

/// `TrialConfigHash` as a fixed-width 16-digit lowercase hex string — the
/// `key` field of the journal record.
std::string TrialConfigKey(const std::string& model,
                           const std::string& dataset,
                           const std::string& variant, int trial,
                           const ModelOptions& model_options,
                           const TrainerOptions& trainer);

class RunJournal {
 public:
  RunJournal() = default;
  ~RunJournal();
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  /// Opens `path` for appending, first loading every complete record
  /// already present (a missing file is an empty journal, not an error).
  /// A torn final line is tolerated; a malformed line anywhere else makes
  /// the open fail — the file is not a journal. Returns false and fills
  /// `*error` (when non-null) on I/O or format errors.
  bool Open(const std::string& path, std::string* error = nullptr);

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// The completed record for `key`, or null. Later records win, so a
  /// trial journaled twice (e.g. by overlapping runs) replays its most
  /// recent outcome.
  const JournalRecord* Find(const std::string& key) const;

  /// Appends one completed trial, durably: the record is written, flushed
  /// and fsync'd before this returns, and becomes visible to `Find`.
  /// Returns false (with `*error` filled when non-null) on I/O errors.
  bool Append(const JournalRecord& record, std::string* error = nullptr);

  /// Records loaded at `Open` plus records appended since.
  size_t size() const { return records_.size(); }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<JournalRecord> records_;
  std::unordered_map<std::string, size_t> by_key_;
  /// Fault hook: RGAE_JOURNAL_CRASH_AFTER=<n> hard-kills the process
  /// (std::_Exit) right after the n-th successful append, simulating a
  /// crash between trials for the resume tests. -1 = disabled.
  long crash_after_ = -1;
  long appended_ = 0;
};

}  // namespace rgae

#endif  // RGAE_EVAL_RUN_JOURNAL_H_
