#include "src/eval/run_journal.h"

#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "src/obs/json.h"
#include "src/obs/log.h"
#include "src/obs/trace.h"

namespace rgae {

namespace {

constexpr const char* kSchema = "rgae.journal.v1";

// Canonical "name=value;" serialization feeding the config hash. Doubles
// use %.17g so every distinct double hashes distinctly and the canonical
// form is platform-stable.
void Put(std::string* out, const char* name, const std::string& v) {
  out->append(name);
  out->push_back('=');
  out->append(v);
  out->push_back(';');
}

void Put(std::string* out, const char* name, long long v) {
  Put(out, name, std::to_string(v));
}

void Put(std::string* out, const char* name, uint64_t v) {
  Put(out, name, std::to_string(v));
}

void Put(std::string* out, const char* name, int v) {
  Put(out, name, static_cast<long long>(v));
}

void Put(std::string* out, const char* name, bool v) {
  Put(out, name, static_cast<long long>(v ? 1 : 0));
}

void Put(std::string* out, const char* name, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  Put(out, name, std::string(buf));
}

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

obs::JsonValue RecordJson(const JournalRecord& r) {
  using obs::JsonValue;
  const TrialOutcome& o = r.outcome;
  JsonValue out = JsonValue::MakeObject();
  out.Set("schema", JsonValue(kSchema));
  out.Set("key", JsonValue(r.key));
  out.Set("model", JsonValue(r.model));
  out.Set("dataset", JsonValue(r.dataset));
  out.Set("variant", JsonValue(r.variant));
  out.Set("trial", JsonValue(r.trial));
  out.Set("seed", JsonValue(r.seed));
  JsonValue scores = JsonValue::MakeObject();
  scores.Set("acc", JsonValue(o.scores.acc));
  scores.Set("nmi", JsonValue(o.scores.nmi));
  scores.Set("ari", JsonValue(o.scores.ari));
  out.Set("scores", std::move(scores));
  out.Set("seconds", JsonValue(o.seconds));
  out.Set("pretrain_seconds", JsonValue(o.result.pretrain_seconds));
  out.Set("cluster_seconds", JsonValue(o.result.cluster_seconds));
  out.Set("cluster_epochs_run", JsonValue(o.result.cluster_epochs_run));
  out.Set("failed", JsonValue(o.failed));
  out.Set("failure_reason", o.failure_reason.empty()
                                ? JsonValue::Null()
                                : JsonValue(o.failure_reason));
  out.Set("timed_out", JsonValue(o.timed_out));
  out.Set("retries", JsonValue(o.retries));
  out.Set("degraded", JsonValue(o.degraded));
  out.Set("rollbacks", JsonValue(o.result.rollbacks));
  return out;
}

// Pulls one typed field out of a parsed record line; each Get* returns
// false on a missing or mis-typed field so a record from a future schema
// (or a corrupted line that still parses) is rejected, not misread.
bool GetString(const obs::JsonValue& doc, const char* key, std::string* out) {
  const obs::JsonValue* v = doc.Get(key);
  if (v == nullptr || !v->is_string()) return false;
  *out = v->string();
  return true;
}

bool GetNumber(const obs::JsonValue& doc, const char* key, double* out) {
  const obs::JsonValue* v = doc.Get(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->number();
  return true;
}

bool GetInt(const obs::JsonValue& doc, const char* key, int* out) {
  double d = 0.0;
  if (!GetNumber(doc, key, &d)) return false;
  *out = static_cast<int>(d);
  return true;
}

bool GetBool(const obs::JsonValue& doc, const char* key, bool* out) {
  const obs::JsonValue* v = doc.Get(key);
  if (v == nullptr || !v->is_bool()) return false;
  *out = v->bool_value();
  return true;
}

bool ParseRecord(const obs::JsonValue& doc, JournalRecord* r) {
  std::string schema;
  if (!GetString(doc, "schema", &schema) || schema != kSchema) return false;
  TrialOutcome& o = r->outcome;
  double seed = 0.0;
  int rollbacks = 0;
  const obs::JsonValue* scores = doc.Get("scores");
  if (scores == nullptr || !scores->is_object()) return false;
  const bool ok =
      GetString(doc, "key", &r->key) && GetString(doc, "model", &r->model) &&
      GetString(doc, "dataset", &r->dataset) &&
      GetString(doc, "variant", &r->variant) &&
      GetInt(doc, "trial", &r->trial) && GetNumber(doc, "seed", &seed) &&
      GetNumber(*scores, "acc", &o.scores.acc) &&
      GetNumber(*scores, "nmi", &o.scores.nmi) &&
      GetNumber(*scores, "ari", &o.scores.ari) &&
      GetNumber(doc, "seconds", &o.seconds) &&
      GetNumber(doc, "pretrain_seconds", &o.result.pretrain_seconds) &&
      GetNumber(doc, "cluster_seconds", &o.result.cluster_seconds) &&
      GetInt(doc, "cluster_epochs_run", &o.result.cluster_epochs_run) &&
      GetBool(doc, "failed", &o.failed) &&
      GetBool(doc, "timed_out", &o.timed_out) &&
      GetInt(doc, "retries", &o.retries) &&
      GetBool(doc, "degraded", &o.degraded) &&
      GetInt(doc, "rollbacks", &rollbacks);
  if (!ok) return false;
  r->seed = static_cast<uint64_t>(seed);
  const obs::JsonValue* reason = doc.Get("failure_reason");
  if (reason != nullptr && reason->is_string()) {
    o.failure_reason = reason->string();
  }
  // Mirror the replayable fields into the embedded TrainResult so replayed
  // outcomes look the same to reports as freshly-run ones.
  o.result.scores = o.scores;
  o.result.failed = o.failed;
  o.result.failure_reason = o.failure_reason;
  o.result.timed_out = o.timed_out;
  o.result.rollbacks = rollbacks;
  return true;
}

}  // namespace

uint64_t TrialConfigHash(const std::string& model, const std::string& dataset,
                         const std::string& variant, int trial,
                         const ModelOptions& model_options,
                         const TrainerOptions& trainer) {
  std::string c;
  c.reserve(512);
  Put(&c, "model", model);
  Put(&c, "dataset", dataset);
  Put(&c, "variant", variant);
  Put(&c, "trial", trial);
  const ModelOptions& m = model_options;
  Put(&c, "m.hidden_dim", m.hidden_dim);
  Put(&c, "m.latent_dim", m.latent_dim);
  Put(&c, "m.learning_rate", m.learning_rate);
  Put(&c, "m.adversarial_weight", m.adversarial_weight);
  Put(&c, "m.discriminator_hidden", m.discriminator_hidden);
  Put(&c, "m.discriminator_learning_rate", m.discriminator_learning_rate);
  Put(&c, "m.target_refresh", m.target_refresh);
  Put(&c, "m.seed", m.seed);
  const TrainerOptions& t = trainer;
  Put(&c, "t.pretrain_epochs", t.pretrain_epochs);
  Put(&c, "t.max_cluster_epochs", t.max_cluster_epochs);
  Put(&c, "t.gamma", t.gamma);
  Put(&c, "t.num_clusters", t.num_clusters);
  Put(&c, "t.use_operators", t.use_operators);
  Put(&c, "t.xi.alpha1", t.xi.alpha1);
  Put(&c, "t.xi.alpha2", t.xi.alpha2);
  Put(&c, "t.xi.use_alpha1", t.xi.use_alpha1);
  Put(&c, "t.xi.use_alpha2", t.xi.use_alpha2);
  Put(&c, "t.upsilon.add_edges", t.upsilon.add_edges);
  Put(&c, "t.upsilon.drop_edges", t.upsilon.drop_edges);
  Put(&c, "t.m1", t.m1);
  Put(&c, "t.m2", t.m2);
  Put(&c, "t.first_group_transform_start", t.first_group_transform_start);
  Put(&c, "t.xi_delay_epochs", t.xi_delay_epochs);
  Put(&c, "t.fd_protection", t.fd_protection);
  Put(&c, "t.convergence_fraction", t.convergence_fraction);
  Put(&c, "t.seed", t.seed);
  return Fnv1a64(c);
}

std::string TrialConfigKey(const std::string& model,
                           const std::string& dataset,
                           const std::string& variant, int trial,
                           const ModelOptions& model_options,
                           const TrainerOptions& trainer) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(TrialConfigHash(
                    model, dataset, variant, trial, model_options, trainer)));
  return std::string(buf);
}

RunJournal::~RunJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

bool RunJournal::Open(const std::string& path, std::string* error) {
  if (file_ != nullptr) return Fail(error, "journal already open");
  // Load phase: every complete line must be a valid record. The final line
  // may be torn (the one write a crash can interrupt — Append fsyncs, but
  // the kill can land mid-write); it is dropped with a warning and its
  // trial simply re-runs.
  std::ifstream in(path);
  if (in) {
    std::string line;
    int lineno = 0;
    bool pending_tail = false;
    std::string tail_error;
    while (std::getline(in, line)) {
      ++lineno;
      if (pending_tail) {
        // The previous bad line was not the last one: corrupt journal.
        return Fail(error, path + ":" + std::to_string(lineno - 1) + ": " +
                               tail_error);
      }
      if (line.empty()) continue;
      obs::JsonValue doc;
      std::string parse_error;
      JournalRecord record;
      if (!obs::JsonValue::Parse(line, &doc, &parse_error)) {
        pending_tail = true;
        tail_error = "malformed journal line: " + parse_error;
        continue;
      }
      if (!ParseRecord(doc, &record)) {
        pending_tail = true;
        tail_error = "journal line is not an " + std::string(kSchema) +
                     " record";
        continue;
      }
      by_key_[record.key] = records_.size();
      records_.push_back(std::move(record));
    }
    if (pending_tail) {
      RGAE_COUNT("journal.torn_tail_dropped");
      RGAE_LOG(kWarn)
          .Event("journal.torn_tail")
          .Field("path", path)
          .Field("line", lineno)
          .Msg(tail_error + " (torn final line dropped; trial will re-run)");
    }
  }
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    return Fail(error, "cannot open journal " + path + " for append: " +
                           std::strerror(errno));
  }
  path_ = path;
  if (const char* env = std::getenv("RGAE_JOURNAL_CRASH_AFTER")) {
    crash_after_ = std::atol(env);
  }
  RGAE_LOG(kInfo)
      .Event("journal.opened")
      .Field("path", path)
      .Field("records", static_cast<long long>(records_.size()))
      .Msg("trial journal opened");
  return true;
}

const JournalRecord* RunJournal::Find(const std::string& key) const {
  const auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : &records_[it->second];
}

bool RunJournal::Append(const JournalRecord& record, std::string* error) {
  if (file_ == nullptr) return Fail(error, "journal is not open");
  const std::string line = RecordJson(record).Dump() + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    return Fail(error, "journal write to " + path_ + " failed: " +
                           std::strerror(errno));
  }
  // Durability point: after the fsync the record survives power loss, so a
  // trial is either fully journaled or (torn tail) not journaled at all.
  if (fsync(fileno(file_)) != 0) {
    return Fail(error, "journal fsync of " + path_ + " failed: " +
                           std::strerror(errno));
  }
  by_key_[record.key] = records_.size();
  records_.push_back(record);
  RGAE_COUNT("journal.records_appended");
  ++appended_;
  if (crash_after_ > 0 && appended_ >= crash_after_) {
    // Test-only crash fault: die *after* the record is durable, exactly
    // like a kill between trials (see RGAE_JOURNAL_CRASH_AFTER).
    std::fprintf(stderr, "journal: injected crash after %ld append(s)\n",
                 appended_);
    std::_Exit(137);
  }
  return true;
}

}  // namespace rgae
