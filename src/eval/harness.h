#ifndef RGAE_EVAL_HARNESS_H_
#define RGAE_EVAL_HARNESS_H_

#include <string>
#include <vector>

#include "src/core/rgae_trainer.h"
#include "src/eval/datasets.h"
#include "src/models/model_factory.h"

namespace rgae {

/// Multi-trial experiment harness used by every table bench. Reproduces the
/// paper's comparison protocol: a couple (𝒟, R-𝒟) shares the same
/// pretrained weights before the clustering phase, then diverges only by
/// the operators Ξ / Υ.

/// One trial of one method.
struct TrialOutcome {
  ClusteringScores scores;
  double seconds = 0.0;  // Clustering-phase wall time.
  TrainResult result;
  /// True when the trainer's resilience layer gave up on the run (see
  /// `TrainResult::failed`); `AggregateTrials` drops such trials.
  bool failed = false;
  std::string failure_reason;
};

/// Outcomes of the base model and its R-variant for one shared-pretrain
/// trial.
struct CoupleOutcome {
  TrialOutcome base;
  TrialOutcome rmodel;
};

/// Everything needed to run one couple.
struct CoupleConfig {
  std::string model_name;   // "GAE", ..., "GMM-VGAE".
  std::string dataset;      // Registry name; hyper-params resolved from it.
  ModelOptions model_options;
  TrainerOptions base;      // use_operators forced false.
  TrainerOptions rvariant;  // use_operators forced true.
};

/// Builds default trainer options for (dataset, model) with the Appendix-C
/// α₁ / M₁ / M₂ values, scaled epoch counts, and the given seed.
CoupleConfig MakeCoupleConfig(const std::string& model_name,
                              const std::string& dataset, uint64_t seed);

/// Runs one couple on the given graph with shared pretraining.
CoupleOutcome RunCouple(const CoupleConfig& config,
                        const AttributedGraph& graph);

/// Runs a single method (base when `use_operators` is false in `trainer`).
TrialOutcome RunSingle(const std::string& model_name,
                       const AttributedGraph& graph,
                       const ModelOptions& model_options,
                       const TrainerOptions& trainer);

/// Best / mean / standard deviation across trials.
struct Aggregate {
  ClusteringScores best;
  ClusteringScores mean;
  ClusteringScores stddev;
  double best_seconds = 0.0;
  double mean_seconds = 0.0;
  double var_seconds = 0.0;
  /// Trials that survived aggregation / trials dropped as failed.
  int num_trials = 0;
  int dropped_trials = 0;
};

/// Aggregates trial outcomes; "best" is the trial with the highest ACC.
/// Failed trials are excluded (their count is reported in
/// `Aggregate::dropped_trials` and logged to stderr); empty or fully-failed
/// inputs yield a zeroed aggregate instead of NaNs, and a single surviving
/// trial gets a zero standard deviation.
Aggregate AggregateTrials(const std::vector<TrialOutcome>& trials);

/// Environment-controlled effort scaling: reads RGAE_TRIALS /
/// RGAE_EPOCH_SCALE (a float multiplier on epoch counts) so the bench suite
/// can be shrunk for smoke runs. Defaults: 3 trials, scale 1.0.
int NumTrialsFromEnv(int default_trials = 3);
double EpochScaleFromEnv();

}  // namespace rgae

#endif  // RGAE_EVAL_HARNESS_H_
