#ifndef RGAE_EVAL_HARNESS_H_
#define RGAE_EVAL_HARNESS_H_

#include <string>
#include <vector>

#include "src/core/rgae_trainer.h"
#include "src/eval/datasets.h"
#include "src/models/model_factory.h"

namespace rgae {

/// Multi-trial experiment harness used by every table bench. Reproduces the
/// paper's comparison protocol: a couple (𝒟, R-𝒟) shares the same
/// pretrained weights before the clustering phase, then diverges only by
/// the operators Ξ / Υ.

/// One trial of one method.
struct TrialOutcome {
  ClusteringScores scores;
  /// Wall time of the trial's *clustering phase only* — the quantity the
  /// paper's runtime table (Table 5) reports for the second-group couples
  /// it compares, where pretraining is shared per couple and cancels out.
  /// Exception: for first-group models run through `RunCouple`, whose
  /// "clustering" is a closed-form GMM fit, this instead holds
  /// `result.pretrain_seconds` (the phase the operators act on). For total
  /// wall time use `result.pretrain_seconds + result.cluster_seconds`;
  /// see DESIGN.md §3 (Table 5).
  double seconds = 0.0;
  TrainResult result;
  /// True when the trainer's resilience layer gave up on the run (see
  /// `TrainResult::failed`) or the harness dropped the trial after
  /// exhausting its retry ladder; `AggregateTrials` drops such trials.
  bool failed = false;
  std::string failure_reason;
  /// True when the final attempt hit its wall-clock `Deadline` (the scores
  /// are a partial-state evaluation, see `TrainResult::timed_out`).
  bool timed_out = false;
  /// Number of extra attempts the harness's retry ladder consumed before
  /// producing this outcome (0 = first attempt succeeded).
  int retries = 0;
  /// True when the outcome came from the reduced-epoch "degraded" rung of
  /// the retry ladder rather than a full-length run.
  bool degraded = false;
};

/// Outcomes of the base model and its R-variant for one shared-pretrain
/// trial.
struct CoupleOutcome {
  TrialOutcome base;
  TrialOutcome rmodel;
};

/// Everything needed to run one couple.
struct CoupleConfig {
  std::string model_name;   // "GAE", ..., "GMM-VGAE".
  std::string dataset;      // Registry name; hyper-params resolved from it.
  ModelOptions model_options;
  TrainerOptions base;      // use_operators forced false.
  TrainerOptions rvariant;  // use_operators forced true.
};

/// Builds default trainer options for (dataset, model) with the Appendix-C
/// α₁ / M₁ / M₂ values, scaled epoch counts, and the given seed.
CoupleConfig MakeCoupleConfig(const std::string& model_name,
                              const std::string& dataset, uint64_t seed);

/// Runs one couple on the given graph with shared pretraining.
CoupleOutcome RunCouple(const CoupleConfig& config,
                        const AttributedGraph& graph);

/// Runs a single method (base when `use_operators` is false in `trainer`).
TrialOutcome RunSingle(const std::string& model_name,
                       const AttributedGraph& graph,
                       const ModelOptions& model_options,
                       const TrainerOptions& trainer);

/// Failure-handling policy of the multi-trial harness — the layer above
/// `ResilienceOptions` (which recovers *within* a run). A trial whose run
/// comes back `failed` or `timed_out` climbs a bounded ladder:
///
///   1. up to `max_retries` full re-runs, each under a fresh deadline and a
///      deterministically perturbed seed (attempt `a` trains with
///      `seed + a * kSeedPerturbation`, so retries are reproducible yet
///      escape seed-specific numerical accidents);
///   2. one "degraded" re-run with epoch counts scaled by
///      `degraded_epoch_fraction` (when `allow_degraded`), cheap enough to
///      fit a budget the full schedule kept blowing;
///   3. otherwise the trial is dropped with a structured reason
///      (`TrialOutcome::failed` + `failure_reason`).
///
/// Every rung is counted: `TrialOutcome::{retries, degraded, timed_out}`
/// feed the `Aggregate` counters and the bench run report.
struct TrialPolicy {
  /// Per-attempt wall-clock budget in seconds; <= 0 means unlimited.
  double deadline_seconds = 0.0;
  /// Full-length re-runs of a failed/timed-out trial.
  int max_retries = 2;
  /// Escalate to one reduced-epoch attempt after the retries run out.
  bool allow_degraded = true;
  /// Epoch-count multiplier of the degraded attempt.
  double degraded_epoch_fraction = 0.25;
};

/// Seed offset between retry attempts (a large odd constant, so perturbed
/// seeds never collide with the harness's own trial-seed schedule).
inline constexpr uint64_t kSeedPerturbation = 0x9E3779B97F4A7C15ULL;

/// Reads RGAE_TRIAL_DEADLINE_S / RGAE_TRIAL_RETRIES on top of the given
/// defaults, so any bench run can be given per-trial budgets without code
/// changes.
TrialPolicy TrialPolicyFromEnv(TrialPolicy defaults = {});

/// `RunSingle` under a `TrialPolicy`: applies the deadline to every
/// attempt and walks the retry/degraded ladder on failure or timeout.
TrialOutcome RunSingleWithPolicy(const std::string& model_name,
                                 const AttributedGraph& graph,
                                 const ModelOptions& model_options,
                                 const TrainerOptions& trainer,
                                 const TrialPolicy& policy);

/// `RunCouple` under a `TrialPolicy`. The couple is retried as a unit
/// (both halves re-run with the same perturbed seed) so the shared-pretrain
/// protocol — identical weights before the clustering phase — survives the
/// ladder; a half that still fails after the ladder is reported failed.
CoupleOutcome RunCoupleWithPolicy(const CoupleConfig& config,
                                  const AttributedGraph& graph,
                                  const TrialPolicy& policy);

/// Best / mean / standard deviation across trials.
struct Aggregate {
  ClusteringScores best;
  ClusteringScores mean;
  ClusteringScores stddev;
  double best_seconds = 0.0;
  double mean_seconds = 0.0;
  double var_seconds = 0.0;
  /// Per-trial clustering-phase seconds of the surviving trials, in trial
  /// order — the raw sample set behind the percentile columns of the
  /// runtime benches (bench/bench_common.h `SummarizeLatencies`).
  std::vector<double> trial_seconds;
  /// Trials that survived aggregation / trials dropped as failed.
  int num_trials = 0;
  int dropped_trials = 0;
  /// Retry-ladder accounting across *all* trials (dropped ones included):
  /// trials whose final attempt hit its deadline, trials that consumed at
  /// least one retry, and trials answered by the degraded rung.
  int timed_out_trials = 0;
  int retried_trials = 0;
  int degraded_trials = 0;
};

/// Aggregates trial outcomes; "best" is the trial with the highest ACC.
/// Failed trials are excluded (their count is reported in
/// `Aggregate::dropped_trials` and logged to stderr); empty or fully-failed
/// inputs yield a zeroed aggregate instead of NaNs, and a single surviving
/// trial gets a zero standard deviation.
Aggregate AggregateTrials(const std::vector<TrialOutcome>& trials);

/// Environment-controlled effort scaling: reads RGAE_TRIALS /
/// RGAE_EPOCH_SCALE (a float multiplier on epoch counts) so the bench suite
/// can be shrunk for smoke runs. Defaults: 3 trials, scale 1.0.
int NumTrialsFromEnv(int default_trials = 3);
double EpochScaleFromEnv();

}  // namespace rgae

#endif  // RGAE_EVAL_HARNESS_H_
