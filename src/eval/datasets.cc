#include "src/eval/datasets.h"

#include <cassert>

#include "src/graph/generators.h"

namespace rgae {

namespace {

// Scaled-down statistics of the six benchmark datasets. Cluster counts
// match the originals (Cora 7, Citeseer 6, Pubmed 3, air traffic 4); node
// counts are shrunk so that the dense O(N²) decoder fits a single-core
// budget, and sparsity/homophily/feature quality are tuned per dataset:
// Citeseer is sparser with weaker features than Cora (which is why its
// absolute scores are lower in the paper); Pubmed has few clusters and a
// relatively denser-connected structure.
// Difficulty is calibrated so the base models land in the paper's score
// bands (ACC roughly 45-75%) with headroom for the R-variants; see
// EXPERIMENTS.md for the calibration notes.
CitationLikeOptions CoraLikeOptions() {
  CitationLikeOptions o;
  o.num_nodes = 600;
  o.num_clusters = 7;
  o.feature_dim = 420;
  o.intra_degree = 2.7;
  o.inter_degree = 1.5;
  o.topic_words = 45;
  o.word_on_prob = 0.10;
  o.word_noise_prob = 0.04;
  o.imbalance = 0.25;
  return o;
}

CitationLikeOptions CiteseerLikeOptions() {
  CitationLikeOptions o;
  o.num_nodes = 560;
  o.num_clusters = 6;
  o.feature_dim = 480;
  o.intra_degree = 2.0;   // Citeseer is the sparsest citation network.
  o.inter_degree = 1.4;
  o.topic_words = 50;
  o.word_on_prob = 0.08;  // Weaker, noisier features.
  o.word_noise_prob = 0.04;
  o.imbalance = 0.3;
  return o;
}

CitationLikeOptions PubmedLikeOptions() {
  CitationLikeOptions o;
  o.num_nodes = 900;
  o.num_clusters = 3;
  o.feature_dim = 300;
  o.intra_degree = 3.0;
  o.inter_degree = 1.8;
  o.topic_words = 70;
  o.word_on_prob = 0.10;
  o.word_noise_prob = 0.05;
  o.imbalance = 0.2;
  return o;
}

AirTrafficLikeOptions UsaAirOptions() {
  AirTrafficLikeOptions o;
  o.num_nodes = 420;  // USA is the largest air-traffic network.
  o.num_levels = 4;
  o.base_degree = 3.0;
  o.level_ratio = 2.0;
  o.degree_jitter = 0.45;  // Hardest of the three (lowest paper scores).
  return o;
}

AirTrafficLikeOptions EuropeAirOptions() {
  AirTrafficLikeOptions o;
  o.num_nodes = 320;
  o.num_levels = 4;
  o.base_degree = 3.0;
  o.level_ratio = 2.2;
  o.degree_jitter = 0.35;
  return o;
}

AirTrafficLikeOptions BrazilAirOptions() {
  AirTrafficLikeOptions o;
  o.num_nodes = 130;  // Brazil is tiny and the easiest (highest scores).
  o.num_levels = 4;
  o.base_degree = 2.5;
  o.level_ratio = 2.6;
  o.degree_jitter = 0.22;
  return o;
}

}  // namespace

const std::vector<std::string>& CitationDatasetNames() {
  static const std::vector<std::string> names{"Cora", "Citeseer", "Pubmed"};
  return names;
}

const std::vector<std::string>& AirTrafficDatasetNames() {
  static const std::vector<std::string> names{"USA", "Europe", "Brazil"};
  return names;
}

bool IsKnownDataset(const std::string& name) {
  for (const auto& n : CitationDatasetNames()) {
    if (n == name) return true;
  }
  for (const auto& n : AirTrafficDatasetNames()) {
    if (n == name) return true;
  }
  return false;
}

AttributedGraph MakeDataset(const std::string& name, uint64_t seed) {
  Rng rng(seed ^ 0x5eed5eedULL);
  if (name == "Cora") return MakeCitationLike(CoraLikeOptions(), rng);
  if (name == "Citeseer") return MakeCitationLike(CiteseerLikeOptions(), rng);
  if (name == "Pubmed") return MakeCitationLike(PubmedLikeOptions(), rng);
  if (name == "USA") return MakeAirTrafficLike(UsaAirOptions(), rng);
  if (name == "Europe") return MakeAirTrafficLike(EuropeAirOptions(), rng);
  if (name == "Brazil") return MakeAirTrafficLike(BrazilAirOptions(), rng);
  assert(false && "unknown dataset");
  return AttributedGraph();
}

int DatasetClusters(const std::string& name) {
  if (name == "Cora") return 7;
  if (name == "Citeseer") return 6;
  if (name == "Pubmed") return 3;
  return 4;  // Air-traffic networks.
}

RHyperParams GetRHyperParams(const std::string& dataset,
                             const std::string& model) {
  // Appendix C, Tables 11-16, keyed by (dataset, model).
  RHyperParams p;
  if (dataset == "Cora") {
    if (model == "ARGAE" || model == "ARVGAE") return {0.3, 50, 1};
    if (model == "DGAE") return {0.3, 20, 15};
    return {0.3, 20, 10};  // GAE, VGAE, GMM-VGAE.
  }
  if (dataset == "Citeseer") {
    if (model == "GAE") return {0.2, 20, 10};
    if (model == "VGAE") return {0.2, 20, 1};
    if (model == "ARGAE" || model == "ARVGAE") return {0.1, 50, 1};
    return {0.2, 50, 1};  // DGAE, GMM-VGAE.
  }
  if (dataset == "Pubmed") {
    if (model == "ARGAE" || model == "ARVGAE") return {0.3, 50, 1};
    if (model == "DGAE") return {0.3, 50, 5};
    return {0.4, 50, 5};  // GAE, VGAE, GMM-VGAE.
  }
  if (dataset == "USA") {
    if (model == "DGAE") return {0.1, 50, 1};
    return {0.3, 50, 1};
  }
  if (dataset == "Europe") {
    if (model == "DGAE") return {0.08, 20, 15};
    return {0.01, 50, 1};
  }
  if (dataset == "Brazil") return {0.25, 50, 1};
  return p;
}

}  // namespace rgae
