#ifndef RGAE_EVAL_DATASETS_H_
#define RGAE_EVAL_DATASETS_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace rgae {

/// Dataset registry for the benchmark harness.
///
/// The paper evaluates on three citation networks (Cora, Citeseer, Pubmed)
/// and three air-traffic networks (USA, Europe, Brazil). Those datasets are
/// not redistributable here, so each name maps to a synthetic generator
/// whose statistics (N, K, feature dimension, sparsity, homophily, feature
/// informativeness — scaled down to laptop size) mirror the original; see
/// DESIGN.md §2 for the substitution rationale.

/// Per-dataset R-operator hyper-parameters (paper Appendix C): α₁ and the
/// Ω / A^self_clus refresh periods M₁, M₂.
struct RHyperParams {
  double alpha1 = 0.3;
  int m1 = 20;
  int m2 = 10;
};

/// {"Cora", "Citeseer", "Pubmed"}.
const std::vector<std::string>& CitationDatasetNames();
/// {"USA", "Europe", "Brazil"}.
const std::vector<std::string>& AirTrafficDatasetNames();

/// True if `name` is a registered dataset.
bool IsKnownDataset(const std::string& name);

/// Generates the named dataset deterministically from `seed`.
AttributedGraph MakeDataset(const std::string& name, uint64_t seed);

/// Number of clusters of the named dataset.
int DatasetClusters(const std::string& name);

/// Appendix-C hyper-parameters for (dataset, model); model names are the
/// base names ("GAE", "DGAE", "GMM-VGAE", ...). Falls back to the dataset
/// default when the model has no dedicated row.
RHyperParams GetRHyperParams(const std::string& dataset,
                             const std::string& model);

}  // namespace rgae

#endif  // RGAE_EVAL_DATASETS_H_
