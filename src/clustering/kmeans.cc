#include "src/clustering/kmeans.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "src/obs/trace.h"

namespace rgae {

namespace {

// k-means++ seeding.
Matrix SeedCenters(const Matrix& data, int k, Rng& rng) {
  const int n = data.rows();
  Matrix centers(k, data.cols());
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  int first = rng.UniformInt(n);
  std::copy(data.row(first), data.row(first) + data.cols(), centers.row(0));
  for (int c = 1; c < k; ++c) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      const double d = RowSquaredDistance(data, i, centers, c - 1);
      min_dist[i] = std::min(min_dist[i], d);
      total += min_dist[i];
    }
    int chosen = 0;
    if (total > 0.0) {
      double x = rng.Uniform() * total;
      for (int i = 0; i < n; ++i) {
        x -= min_dist[i];
        if (x <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.UniformInt(n);
    }
    std::copy(data.row(chosen), data.row(chosen) + data.cols(),
              centers.row(c));
  }
  return centers;
}

KMeansResult RunOnce(const Matrix& data, int k, Rng& rng,
                     const KMeansOptions& options) {
  const int n = data.rows();
  KMeansResult result;
  result.centers = SeedCenters(data, k, rng);
  result.assignments.assign(n, 0);
  double prev_inertia = std::numeric_limits<double>::max();
  for (int it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    // Assignment step.
    bool changed = false;
    double inertia = 0.0;
    for (int i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        const double d = RowSquaredDistance(data, i, result.centers, c);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (best_c != result.assignments[i]) changed = true;
      result.assignments[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;
    // Update step.
    result.centers = ClusterMeans(data, result.assignments, k);
    if (!changed || prev_inertia - inertia < options.tolerance) break;
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace

KMeansResult KMeans(const Matrix& data, int k, Rng& rng,
                    const KMeansOptions& options) {
  RGAE_TIMED_KERNEL("kernel.kmeans");
  assert(k > 0 && data.rows() >= k);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  int total_iterations = 0;
  for (int r = 0; r < std::max(1, options.restarts); ++r) {
    KMeansResult candidate = RunOnce(data, k, rng, options);
    total_iterations += candidate.iterations;
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }
  if (obs::Enabled()) {
    RGAE_COUNT("kmeans.fits");
    static obs::Histogram* const iters =
        obs::MetricsRegistry::Global().GetHistogram("kmeans.iterations");
    iters->Observe(total_iterations);
  }
  return best;
}

std::vector<int> NearestCenters(const Matrix& data, const Matrix& centers) {
  std::vector<int> out(data.rows(), 0);
  for (int i = 0; i < data.rows(); ++i) {
    double best = std::numeric_limits<double>::max();
    for (int c = 0; c < centers.rows(); ++c) {
      const double d = RowSquaredDistance(data, i, centers, c);
      if (d < best) {
        best = d;
        out[i] = c;
      }
    }
  }
  return out;
}

Matrix ClusterMeans(const Matrix& data, const std::vector<int>& assignments,
                    int k) {
  assert(static_cast<int>(assignments.size()) == data.rows());
  Matrix centers(k, data.cols());
  std::vector<int> counts(k, 0);
  for (int i = 0; i < data.rows(); ++i) {
    const int c = assignments[i];
    assert(c >= 0 && c < k);
    ++counts[c];
    const double* row = data.row(i);
    double* center = centers.row(c);
    for (int j = 0; j < data.cols(); ++j) center[j] += row[j];
  }
  // Overall mean as the fallback for empty clusters.
  Matrix overall(1, data.cols());
  for (int i = 0; i < data.rows(); ++i) {
    const double* row = data.row(i);
    for (int j = 0; j < data.cols(); ++j) overall(0, j) += row[j];
  }
  if (data.rows() > 0) overall *= 1.0 / data.rows();
  for (int c = 0; c < k; ++c) {
    double* center = centers.row(c);
    if (counts[c] == 0) {
      std::copy(overall.row(0), overall.row(0) + data.cols(), center);
    } else {
      for (int j = 0; j < data.cols(); ++j) center[j] /= counts[c];
    }
  }
  return centers;
}

}  // namespace rgae
