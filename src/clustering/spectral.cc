#include "src/clustering/spectral.h"

#include <cassert>
#include <cmath>

#include "src/clustering/kmeans.h"

namespace rgae {

namespace {

// Gram-Schmidt orthonormalization of the columns of y (in place). Columns
// that collapse numerically are re-randomized.
void Orthonormalize(Matrix* y, Rng& rng) {
  const int n = y->rows();
  const int k = y->cols();
  for (int c = 0; c < k; ++c) {
    for (int prev = 0; prev < c; ++prev) {
      double dot = 0.0;
      for (int i = 0; i < n; ++i) dot += (*y)(i, c) * (*y)(i, prev);
      for (int i = 0; i < n; ++i) (*y)(i, c) -= dot * (*y)(i, prev);
    }
    double norm = 0.0;
    for (int i = 0; i < n; ++i) norm += (*y)(i, c) * (*y)(i, c);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      for (int i = 0; i < n; ++i) (*y)(i, c) = rng.Gaussian();
      // One more pass will re-orthogonalize this column next iteration.
      norm = 0.0;
      for (int i = 0; i < n; ++i) norm += (*y)(i, c) * (*y)(i, c);
      norm = std::sqrt(norm);
    }
    for (int i = 0; i < n; ++i) (*y)(i, c) /= norm;
  }
}

}  // namespace

Matrix SpectralEmbedding(const CsrMatrix& filter, int k, Rng& rng,
                         const SpectralOptions& options) {
  assert(filter.rows() == filter.cols());
  const int n = filter.rows();
  assert(k >= 1 && k <= n);
  Matrix y = GaussianMatrix(n, k, 1.0, rng);
  Orthonormalize(&y, rng);
  Matrix prev = y;
  for (int it = 0; it < options.power_iterations; ++it) {
    // Shifted operator (Ã + I)/2: y <- (filter*y + y) / 2.
    Matrix next = filter.Multiply(y);
    next += y;
    next *= 0.5;
    Orthonormalize(&next, rng);
    // Convergence: subspace change measured entrywise up to column sign.
    double delta = 0.0;
    for (int c = 0; c < k; ++c) {
      double dot = 0.0;
      for (int i = 0; i < n; ++i) dot += next(i, c) * prev(i, c);
      const double sign = dot >= 0.0 ? 1.0 : -1.0;
      for (int i = 0; i < n; ++i) {
        delta = std::max(delta,
                         std::abs(next(i, c) - sign * prev(i, c)));
      }
    }
    prev = next;
    y = std::move(next);
    if (delta < options.tolerance) break;
  }
  return y;
}

std::vector<int> SpectralClustering(const CsrMatrix& filter, int k, Rng& rng,
                                    const SpectralOptions& options) {
  Matrix embedding = SpectralEmbedding(filter, k, rng, options);
  NormalizeRowsL2(&embedding);  // Ng-Jordan-Weiss row normalization.
  return KMeans(embedding, k, rng).assignments;
}

}  // namespace rgae
