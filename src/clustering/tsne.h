#ifndef RGAE_CLUSTERING_TSNE_H_
#define RGAE_CLUSTERING_TSNE_H_

#include "src/tensor/matrix.h"
#include "src/tensor/random.h"

namespace rgae {

/// Exact (O(N²)) t-SNE, used to reproduce the latent-space visualizations
/// of the paper's Figure 10. Suitable for the library's graph sizes
/// (hundreds to a few thousands of points); no Barnes-Hut approximation.
struct TsneOptions {
  int output_dim = 2;
  double perplexity = 30.0;
  int iterations = 500;
  double learning_rate = 100.0;
  /// Momentum switches from `initial_momentum` to `final_momentum` at
  /// iteration `momentum_switch`.
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  int momentum_switch = 100;
  /// Early exaggeration factor applied for the first `exaggeration_until`
  /// iterations.
  double early_exaggeration = 4.0;
  int exaggeration_until = 50;
};

/// Embeds the rows of `data` (n x d) into `options.output_dim` dimensions.
/// Deterministic given the RNG state.
Matrix Tsne(const Matrix& data, const TsneOptions& options, Rng& rng);

/// Perplexity-calibrated symmetric input affinities P (n x n, rows of the
/// conditional distribution binary-searched to the target perplexity, then
/// symmetrized and normalized to sum 1). Exposed for tests.
Matrix TsneInputAffinities(const Matrix& data, double perplexity);

}  // namespace rgae

#endif  // RGAE_CLUSTERING_TSNE_H_
