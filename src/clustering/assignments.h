#ifndef RGAE_CLUSTERING_ASSIGNMENTS_H_
#define RGAE_CLUSTERING_ASSIGNMENTS_H_

#include <vector>

#include "src/tensor/matrix.h"

namespace rgae {

/// Soft/hard clustering-assignment utilities shared by the model zoo and
/// by operator Ξ.

/// Hard argmax assignment per row of a soft-assignment matrix (n x k).
std::vector<int> HardAssign(const Matrix& soft);

/// One-hot encoding of hard assignments into an n x k matrix.
Matrix OneHot(const std::vector<int>& assignments, int k);

/// Student's t-distribution soft assignment (DEC / DGAE, Eq. 20):
/// p_ij ∝ (1 + ||z_i - mu_j||²)^-1, rows normalized.
Matrix StudentTAssignments(const Matrix& z, const Matrix& centers);

/// DEC target distribution: q_ij ∝ p_ij² / f_j with f_j = Σ_i p_ij, rows
/// normalized. Sharpened "hard-ish" version of P used as Q in Eq. 19.
Matrix DecTargetDistribution(const Matrix& p);

/// Gaussian soft scores of Eq. (15): similarity of each embedded point to
/// each cluster representative under a diagonal covariance, rows normalized.
/// `centers` is k x d, `variances` is k x d (floored at 1e-6).
Matrix GaussianSoftAssignments(const Matrix& z, const Matrix& centers,
                               const Matrix& variances);

/// Per-cluster diagonal variances of `z` under hard `assignments`
/// (k x d, floored at `min_variance`).
Matrix ClusterVariances(const Matrix& z, const std::vector<int>& assignments,
                        int k, double min_variance = 1e-6);

}  // namespace rgae

#endif  // RGAE_CLUSTERING_ASSIGNMENTS_H_
