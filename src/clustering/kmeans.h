#ifndef RGAE_CLUSTERING_KMEANS_H_
#define RGAE_CLUSTERING_KMEANS_H_

#include <vector>

#include "src/tensor/matrix.h"
#include "src/tensor/random.h"

namespace rgae {

/// Result of a k-means run.
struct KMeansResult {
  Matrix centers;               // k x d.
  std::vector<int> assignments; // One cluster id per input row.
  double inertia = 0.0;         // Sum of squared distances to centers.
  int iterations = 0;           // Lloyd iterations executed.
};

struct KMeansOptions {
  int max_iterations = 100;
  /// Converged when no assignment changes or inertia improves by less.
  double tolerance = 1e-6;
  /// Number of independent restarts; the best inertia wins.
  int restarts = 3;
};

/// Lloyd's k-means with k-means++ seeding. `data` is n x d with n >= k.
KMeansResult KMeans(const Matrix& data, int k, Rng& rng,
                    const KMeansOptions& options = {});

/// Assigns each row of `data` to its nearest row of `centers`.
std::vector<int> NearestCenters(const Matrix& data, const Matrix& centers);

/// Mean of the rows of `data` belonging to each cluster; empty clusters get
/// a copy of the overall mean.
Matrix ClusterMeans(const Matrix& data, const std::vector<int>& assignments,
                    int k);

}  // namespace rgae

#endif  // RGAE_CLUSTERING_KMEANS_H_
