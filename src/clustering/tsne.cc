#include "src/clustering/tsne.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace rgae {

namespace {

// Row of conditional affinities for point i with the Gaussian bandwidth
// beta = 1/(2σ²); returns the row's Shannon entropy (in nats).
double FillConditionalRow(const Matrix& d2, int i, double beta,
                          std::vector<double>* row) {
  const int n = d2.rows();
  double sum = 0.0;
  for (int j = 0; j < n; ++j) {
    (*row)[j] = j == i ? 0.0 : std::exp(-beta * d2(i, j));
    sum += (*row)[j];
  }
  if (sum <= 0.0) {
    // Degenerate (all duplicates): uniform over the others.
    for (int j = 0; j < n; ++j) (*row)[j] = j == i ? 0.0 : 1.0 / (n - 1);
    return std::log(static_cast<double>(n - 1));
  }
  double entropy = 0.0;
  for (int j = 0; j < n; ++j) {
    (*row)[j] /= sum;
    if ((*row)[j] > 1e-12) entropy -= (*row)[j] * std::log((*row)[j]);
  }
  return entropy;
}

}  // namespace

Matrix TsneInputAffinities(const Matrix& data, double perplexity) {
  const int n = data.rows();
  assert(n >= 3);
  assert(perplexity > 1.0);
  const double target_entropy =
      std::log(std::min(perplexity, static_cast<double>(n - 1)));

  // Pairwise squared distances.
  Matrix d2(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double d = RowSquaredDistance(data, i, data, j);
      d2(i, j) = d;
      d2(j, i) = d;
    }
  }

  Matrix p(n, n);
  std::vector<double> row(n);
  for (int i = 0; i < n; ++i) {
    // Binary search the bandwidth to the target entropy.
    double beta = 1.0, beta_lo = 0.0, beta_hi = 1e300;
    double entropy = FillConditionalRow(d2, i, beta, &row);
    for (int it = 0; it < 50 && std::abs(entropy - target_entropy) > 1e-5;
         ++it) {
      if (entropy > target_entropy) {
        beta_lo = beta;
        beta = beta_hi >= 1e300 ? beta * 2.0 : 0.5 * (beta + beta_hi);
      } else {
        beta_hi = beta;
        beta = beta_lo <= 0.0 ? beta / 2.0 : 0.5 * (beta + beta_lo);
      }
      entropy = FillConditionalRow(d2, i, beta, &row);
    }
    for (int j = 0; j < n; ++j) p(i, j) = row[j];
  }

  // Symmetrize and normalize to a joint distribution. Only the upper
  // triangle is averaged (writing both entries) so that the in-place
  // update cannot read an already-averaged value.
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double v = 0.5 * (p(i, j) + p(j, i));
      p(i, j) = v;
      p(j, i) = v;
      total += 2.0 * v;
    }
    p(i, i) = 0.0;
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      p(i, j) = std::max(p(i, j) / total, 1e-12);
    }
  }
  return p;
}

Matrix Tsne(const Matrix& data, const TsneOptions& options, Rng& rng) {
  const int n = data.rows();
  const int out_dim = options.output_dim;
  assert(out_dim >= 1);
  Matrix p = TsneInputAffinities(data, options.perplexity);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) p(i, j) *= options.early_exaggeration;
  }

  Matrix y = GaussianMatrix(n, out_dim, 1e-2, rng);
  Matrix velocity(n, out_dim);
  Matrix grad(n, out_dim);
  Matrix q_num(n, n);  // Unnormalized Student-t affinities.

  for (int iter = 0; iter < options.iterations; ++iter) {
    if (iter == options.exaggeration_until) {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) p(i, j) /= options.early_exaggeration;
      }
    }
    // Q numerators and their sum.
    double q_total = 0.0;
    for (int i = 0; i < n; ++i) {
      q_num(i, i) = 0.0;
      for (int j = i + 1; j < n; ++j) {
        const double u = 1.0 / (1.0 + RowSquaredDistance(y, i, y, j));
        q_num(i, j) = u;
        q_num(j, i) = u;
        q_total += 2.0 * u;
      }
    }
    // Gradient: 4 Σ_j (p_ij - q_ij) u_ij (y_i - y_j).
    grad.Zero();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const double u = q_num(i, j);
        const double coeff = 4.0 * (p(i, j) - u / q_total) * u;
        for (int c = 0; c < out_dim; ++c) {
          grad(i, c) += coeff * (y(i, c) - y(j, c));
        }
      }
    }
    const double momentum = iter < options.momentum_switch
                                ? options.initial_momentum
                                : options.final_momentum;
    for (int i = 0; i < n; ++i) {
      for (int c = 0; c < out_dim; ++c) {
        velocity(i, c) = momentum * velocity(i, c) -
                         options.learning_rate * grad(i, c);
        y(i, c) += velocity(i, c);
      }
    }
    // Re-center to keep the embedding bounded.
    for (int c = 0; c < out_dim; ++c) {
      double mean = 0.0;
      for (int i = 0; i < n; ++i) mean += y(i, c);
      mean /= n;
      for (int i = 0; i < n; ++i) y(i, c) -= mean;
    }
  }
  return y;
}

}  // namespace rgae
