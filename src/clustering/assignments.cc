#include "src/clustering/assignments.h"

#include <cassert>
#include <cmath>

#include "src/kernels/kernels.h"
#include "src/obs/trace.h"

namespace rgae {

std::vector<int> HardAssign(const Matrix& soft) {
  std::vector<int> out(soft.rows(), 0);
  for (int i = 0; i < soft.rows(); ++i) {
    for (int j = 1; j < soft.cols(); ++j) {
      if (soft(i, j) > soft(i, out[i])) out[i] = j;
    }
  }
  return out;
}

Matrix OneHot(const std::vector<int>& assignments, int k) {
  Matrix out(static_cast<int>(assignments.size()), k);
  for (size_t i = 0; i < assignments.size(); ++i) {
    assert(assignments[i] >= 0 && assignments[i] < k);
    out(static_cast<int>(i), assignments[i]) = 1.0;
  }
  return out;
}

Matrix StudentTAssignments(const Matrix& z, const Matrix& centers) {
  RGAE_TIMED_KERNEL("kernel.row_softmax");
  const int n = z.rows();
  const int k = centers.rows();
  const int d = z.cols();
  // Cost model: per (i,j) pair a d-dim squared distance (3d flops) plus the
  // kernel + normalization (~4 flops); bytes = read z and centers once per
  // pair-row plus the output.
  RGAE_KERNEL_WORK("kernel.row_softmax",
                   static_cast<int64_t>(n) * k * (3LL * d + 4),
                   8LL * (static_cast<int64_t>(n) * d +
                          static_cast<int64_t>(k) * d +
                          static_cast<int64_t>(n) * k));
  Matrix p(n, k);
  kernels::StudentT(z.data(), n, d, centers.data(), k, p.data());
  return p;
}

Matrix DecTargetDistribution(const Matrix& p) {
  const int n = p.rows();
  const int k = p.cols();
  std::vector<double> f(k, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) f[j] += p(i, j);
  }
  Matrix q(n, k);
  for (int i = 0; i < n; ++i) {
    double sum = 0.0;
    for (int j = 0; j < k; ++j) {
      q(i, j) = p(i, j) * p(i, j) / std::max(f[j], 1e-12);
      sum += q(i, j);
    }
    for (int j = 0; j < k; ++j) q(i, j) /= std::max(sum, 1e-12);
  }
  return q;
}

Matrix GaussianSoftAssignments(const Matrix& z, const Matrix& centers,
                               const Matrix& variances) {
  assert(centers.rows() == variances.rows() &&
         centers.cols() == variances.cols());
  const int n = z.rows();
  const int k = centers.rows();
  const int d = z.cols();
  RGAE_TIMED_KERNEL("kernel.row_softmax");
  // Cost model: per (i,j) pair a d-dim variance-scaled distance (4d flops)
  // plus log-sum-exp normalization (~5 flops); centers and variances are
  // both streamed per row.
  RGAE_KERNEL_WORK("kernel.row_softmax",
                   static_cast<int64_t>(n) * k * (4LL * d + 5),
                   8LL * (static_cast<int64_t>(n) * d +
                          2LL * k * d + static_cast<int64_t>(n) * k));
  Matrix p(n, k);
  kernels::Gaussian(z.data(), n, d, centers.data(), variances.data(), k,
                    p.data());
  return p;
}

Matrix ClusterVariances(const Matrix& z, const std::vector<int>& assignments,
                        int k, double min_variance) {
  assert(static_cast<int>(assignments.size()) == z.rows());
  Matrix means(k, z.cols());
  std::vector<int> counts(k, 0);
  for (int i = 0; i < z.rows(); ++i) {
    const int c = assignments[i];
    ++counts[c];
    for (int j = 0; j < z.cols(); ++j) means(c, j) += z(i, j);
  }
  for (int c = 0; c < k; ++c) {
    if (counts[c] > 0) {
      for (int j = 0; j < z.cols(); ++j) means(c, j) /= counts[c];
    }
  }
  Matrix var(k, z.cols(), 1.0);
  Matrix sq(k, z.cols());
  for (int i = 0; i < z.rows(); ++i) {
    const int c = assignments[i];
    for (int j = 0; j < z.cols(); ++j) {
      const double diff = z(i, j) - means(c, j);
      sq(c, j) += diff * diff;
    }
  }
  for (int c = 0; c < k; ++c) {
    for (int j = 0; j < z.cols(); ++j) {
      var(c, j) = counts[c] > 0
                      ? std::max(min_variance, sq(c, j) / counts[c])
                      : 1.0;
    }
  }
  return var;
}

}  // namespace rgae
