#include "src/clustering/gmm.h"

#include <cassert>
#include <cmath>

#include "src/clustering/kmeans.h"
#include "src/obs/trace.h"

namespace rgae {

namespace {

constexpr double kLog2Pi = 1.8378770664093453;

// Hard floor applied to variances inside the density evaluation. A caller
// can hand us a collapsed (zero- or near-zero-variance) component — e.g. a
// cluster that EM shrank onto identical points — and without the floor the
// log density turns into 0/0 = NaN for points sitting exactly on the mean.
constexpr double kDensityVarianceFloor = 1e-12;

// Per-row log joint densities log(pi_k) + log N(x_i; mu_k, var_k): n x k.
Matrix LogJoint(const GmmModel& m, const Matrix& data) {
  const int n = data.rows();
  const int k = m.num_components();
  const int d = m.dim();
  Matrix lj(n, k);
  std::vector<double> log_norm(k, 0.0);  // Precomputed per-component parts.
  for (int c = 0; c < k; ++c) {
    double s = std::log(std::max(m.weights[c], 1e-300));
    for (int j = 0; j < d; ++j) {
      s -= 0.5 * (std::log(std::max(m.variances(c, j),
                                    kDensityVarianceFloor)) +
                  kLog2Pi);
    }
    log_norm[c] = s;
  }
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < k; ++c) {
      double s = log_norm[c];
      for (int j = 0; j < d; ++j) {
        const double diff = data(i, j) - m.means(c, j);
        s -= 0.5 * diff * diff /
             std::max(m.variances(c, j), kDensityVarianceFloor);
      }
      lj(i, c) = s;
    }
  }
  return lj;
}

}  // namespace

Matrix GmmModel::Responsibilities(const Matrix& data) const {
  Matrix lj = LogJoint(*this, data);
  for (int i = 0; i < lj.rows(); ++i) {
    double row_max = lj(i, 0);
    for (int c = 1; c < lj.cols(); ++c) row_max = std::max(row_max, lj(i, c));
    // A point can be impossibly far from every component (all log joints
    // -inf after underflow); fall back to a uniform row rather than emit
    // NaN from -inf - (-inf) below.
    if (!std::isfinite(row_max)) {
      for (int c = 0; c < lj.cols(); ++c) lj(i, c) = 1.0 / lj.cols();
      continue;
    }
    double sum = 0.0;
    for (int c = 0; c < lj.cols(); ++c) {
      lj(i, c) = std::exp(lj(i, c) - row_max);
      sum += lj(i, c);
    }
    for (int c = 0; c < lj.cols(); ++c) lj(i, c) /= sum;
  }
  return lj;
}

double GmmModel::MeanLogLikelihood(const Matrix& data) const {
  const Matrix lj = LogJoint(*this, data);
  double total = 0.0;
  for (int i = 0; i < lj.rows(); ++i) {
    double row_max = lj(i, 0);
    for (int c = 1; c < lj.cols(); ++c) row_max = std::max(row_max, lj(i, c));
    double sum = 0.0;
    for (int c = 0; c < lj.cols(); ++c) sum += std::exp(lj(i, c) - row_max);
    total += row_max + std::log(sum);
  }
  return data.rows() > 0 ? total / data.rows() : 0.0;
}

std::vector<int> GmmModel::HardAssignments(const Matrix& data) const {
  const Matrix r = Responsibilities(data);
  std::vector<int> out(r.rows(), 0);
  for (int i = 0; i < r.rows(); ++i) {
    for (int c = 1; c < r.cols(); ++c) {
      if (r(i, c) > r(i, out[i])) out[i] = c;
    }
  }
  return out;
}

GmmModel FitGmm(const Matrix& data, int k, Rng& rng,
                const GmmOptions& options) {
  assert(k > 0 && data.rows() >= k);
  const int n = data.rows();
  const int d = data.cols();

  // Initialize from k-means.
  const KMeansResult km = KMeans(data, k, rng);
  GmmModel model;
  model.means = km.centers;
  model.variances = Matrix(k, d, 1.0);
  model.weights.assign(k, 1.0 / k);
  {
    std::vector<int> counts(k, 0);
    Matrix sq(k, d);
    for (int i = 0; i < n; ++i) {
      const int c = km.assignments[i];
      ++counts[c];
      for (int j = 0; j < d; ++j) {
        const double diff = data(i, j) - model.means(c, j);
        sq(c, j) += diff * diff;
      }
    }
    for (int c = 0; c < k; ++c) {
      model.weights[c] = std::max(1, counts[c]) / static_cast<double>(n);
      for (int j = 0; j < d; ++j) {
        model.variances(c, j) =
            std::max(options.min_variance,
                     counts[c] > 0 ? sq(c, j) / counts[c] : 1.0);
      }
    }
  }

  EmIterations(&model, data, options.max_iterations, options);
  return model;
}

void EmIterations(GmmModel* model, const Matrix& data, int iterations,
                  const GmmOptions& options) {
  RGAE_TIMED_KERNEL("kernel.gmm_em");
  const int n = data.rows();
  const int k = model->num_components();
  const int d = model->dim();
  double prev_ll = -1e300;
  int ran = 0;
  for (int it = 0; it < iterations; ++it) {
    ++ran;
    // E-step.
    const Matrix resp = model->Responsibilities(data);
    // M-step.
    for (int c = 0; c < k; ++c) {
      double nk = 0.0;
      for (int i = 0; i < n; ++i) nk += resp(i, c);
      nk = std::max(nk, 1e-10);
      model->weights[c] = nk / n;
      for (int j = 0; j < d; ++j) {
        double mean = 0.0;
        for (int i = 0; i < n; ++i) mean += resp(i, c) * data(i, j);
        mean /= nk;
        model->means(c, j) = mean;
      }
      for (int j = 0; j < d; ++j) {
        double var = 0.0;
        for (int i = 0; i < n; ++i) {
          const double diff = data(i, j) - model->means(c, j);
          var += resp(i, c) * diff * diff;
        }
        model->variances(c, j) = std::max(options.min_variance, var / nk);
      }
    }
    const double ll = model->MeanLogLikelihood(data);
    if (ll - prev_ll < options.tolerance) break;
    prev_ll = ll;
  }
  if (obs::Enabled()) {
    RGAE_COUNT("gmm.fits");
    static obs::Histogram* const iters =
        obs::MetricsRegistry::Global().GetHistogram("gmm.iterations");
    iters->Observe(ran);
  }
}

}  // namespace rgae
