#ifndef RGAE_CLUSTERING_GMM_H_
#define RGAE_CLUSTERING_GMM_H_

#include <vector>

#include "src/tensor/matrix.h"
#include "src/tensor/random.h"

namespace rgae {

/// Diagonal-covariance Gaussian Mixture Model fitted by EM.
///
/// Used (a) to initialize GMM-VGAE's mixture parameters after pretraining
/// and (b) as the soft-assignment backend of operator Ξ when the base model
/// produces hard assignments (Eq. 15 of the paper).
struct GmmModel {
  Matrix means;     // k x d.
  Matrix variances; // k x d (diagonal covariances).
  std::vector<double> weights;  // Mixture weights, sum to 1.

  int num_components() const { return means.rows(); }
  int dim() const { return means.cols(); }

  /// Posterior responsibilities p(k | x_i); rows sum to 1. `data` is n x d.
  Matrix Responsibilities(const Matrix& data) const;

  /// Mean log-likelihood of the data under the mixture.
  double MeanLogLikelihood(const Matrix& data) const;

  /// Hard assignment = argmax responsibility per row.
  std::vector<int> HardAssignments(const Matrix& data) const;
};

struct GmmOptions {
  int max_iterations = 100;
  double tolerance = 1e-5;
  /// Variance floor to keep EM numerically sane.
  double min_variance = 1e-6;
};

/// Fits a k-component diagonal GMM with k-means initialization.
GmmModel FitGmm(const Matrix& data, int k, Rng& rng,
                const GmmOptions& options = {});

/// Runs up to `iterations` EM updates on an existing model (warm start).
/// Stops early once the mean log-likelihood improves by less than
/// `options.tolerance`. Used by GMM-VGAE to track the moving embedding.
void EmIterations(GmmModel* model, const Matrix& data, int iterations,
                  const GmmOptions& options = {});

}  // namespace rgae

#endif  // RGAE_CLUSTERING_GMM_H_
