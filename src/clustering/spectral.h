#ifndef RGAE_CLUSTERING_SPECTRAL_H_
#define RGAE_CLUSTERING_SPECTRAL_H_

#include <vector>

#include "src/graph/csr.h"
#include "src/tensor/matrix.h"
#include "src/tensor/random.h"

namespace rgae {

/// Spectral embedding + clustering baseline (structure-only; one of the
/// classical comparators behind the Table-17 method field).
///
/// Computes the top-k eigenvectors of the symmetrically normalized
/// adjacency Ã = D^-1/2 (A+I) D^-1/2 by block power iteration with
/// Gram-Schmidt re-orthonormalization. Since Ã's spectrum lies in [-1, 1]
/// and clustering structure concentrates in the leading eigenvectors, the
/// shifted operator (Ã + I)/2 makes the leading eigenvalues dominant in
/// magnitude, which the power iteration needs.

struct SpectralOptions {
  int power_iterations = 200;
  double tolerance = 1e-8;
};

/// Top-k eigenvectors (n x k, orthonormal columns) of the shifted filter.
/// `filter` must be symmetric.
Matrix SpectralEmbedding(const CsrMatrix& filter, int k, Rng& rng,
                         const SpectralOptions& options = {});

/// Full baseline: spectral embedding of Ã followed by k-means with
/// row-normalized eigenvectors (Ng-Jordan-Weiss style). Returns hard
/// assignments.
std::vector<int> SpectralClustering(const CsrMatrix& filter, int k, Rng& rng,
                                    const SpectralOptions& options = {});

}  // namespace rgae

#endif  // RGAE_CLUSTERING_SPECTRAL_H_
