#ifndef RGAE_UTIL_BINIO_H_
#define RGAE_UTIL_BINIO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/matrix.h"

namespace rgae {

/// Shared fixed-width binary serialization used by every durable binary
/// format in the library (checkpoints `RGAECKP1`, inference snapshots
/// `rgae.snapshot.v1`). Centralizing the primitives keeps the two formats'
/// field encodings — and their bounds checks — identical, so a corruption
/// class caught in one reader is caught in both.
///
/// All integers and doubles are stored in native (little-endian on every
/// supported target) byte order; matrices are `i64 rows, i64 cols` followed
/// by the raw row-major double payload, byte-identical to the in-memory
/// representation.

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a byte range. Used to
/// checksum snapshot sections so bit rot is reported as corruption instead
/// of surfacing as silently wrong model output.
uint32_t Crc32(const char* data, size_t size);
inline uint32_t Crc32(const std::string& s) { return Crc32(s.data(), s.size()); }

/// Appends fixed-width fields to a growing byte buffer.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v);
  void F64(double v);
  /// u64 byte count + raw bytes.
  void Str(const std::string& s);
  /// i64 rows, i64 cols, raw row-major doubles.
  void Mat(const Matrix& m);
  /// u64 count + that many matrices.
  void MatList(const std::vector<Matrix>& list);
  /// u64 count + one i64 per element.
  void IntVec(const std::vector<int>& v);

 private:
  std::string* out_;
};

/// Bounds-checked cursor over an in-memory byte buffer. Every read returns
/// false instead of running past the end, so truncated files surface as
/// clean format errors. Size caps mirror the historical checkpoint reader:
/// matrix dims <= 2^31, matrix-list count <= 2^20, int-vector count <= 2^28,
/// string length <= 2^28.
class BinaryReader {
 public:
  BinaryReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit BinaryReader(const std::string& buffer)
      : BinaryReader(buffer.data(), buffer.size()) {}

  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I64(int64_t* v);
  bool F64(double* v);
  bool Str(std::string* s);
  bool Mat(Matrix* m);
  bool MatList(std::vector<Matrix>* list);
  bool IntVec(std::vector<int>* v);

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }
  /// Current read offset.
  size_t position() const { return pos_; }
  /// Pointer to the next unread byte.
  const char* cursor() const { return data_ + pos_; }
  /// Advances the cursor without interpreting the bytes.
  bool Skip(size_t bytes);

 private:
  bool Raw(void* dst, size_t bytes);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace rgae

#endif  // RGAE_UTIL_BINIO_H_
