#include "src/util/fileio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace rgae {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message + " (" + std::strerror(errno) + ")";
  return false;
}

/// Directory part of `path` ("." when there is none), for the directory
/// fsync that makes the rename itself durable.
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

bool WriteFileAtomic(const std::string& path, const std::string& contents,
                     std::string* error) {
  // Same-directory temp name so the rename stays within one filesystem.
  // The pid suffix keeps concurrent writers (e.g. two bench processes
  // pointed at the same output) from clobbering each other's staging file.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Fail(error, "cannot open " + tmp + " for writing");

  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Fail(error, "write error on " + tmp);
    }
    written += static_cast<size_t>(n);
  }
  // Data must be on disk before the rename publishes the file, otherwise a
  // crash could expose a named-but-empty (torn) target.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Fail(error, "fsync failed on " + tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Fail(error, "close failed on " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Fail(error, "cannot rename " + tmp + " to " + path);
  }
  // Best-effort directory sync: persists the rename. Some filesystems
  // refuse O_RDONLY fsync on directories; the rename is still atomic, so
  // that is not worth failing the write over.
  const int dir_fd = ::open(DirName(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return true;
}

bool ReadFileToString(const std::string& path, std::string* contents,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Fail(error, "read error on " + path);
  *contents = buffer.str();
  return true;
}

}  // namespace rgae
