#ifndef RGAE_UTIL_SYNC_H_
#define RGAE_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>  // Raw sync: wrapped by rgae::CondVar below.
#include <mutex>               // Raw sync: wrapped by rgae::Mutex below.

#include "src/analysis/lockcheck.h"

/// Annotated synchronization primitives (DESIGN.md §7).
///
/// Every mutex in `src/` goes through `rgae::Mutex` / `rgae::MutexLock` /
/// `rgae::CondVar` instead of the std types (lint rule R10), for two
/// compounding reasons:
///
///  1. **Compile-time locking contracts.** The wrappers carry Clang
///     thread-safety capability attributes, so `RGAE_GUARDED_BY(mu_)` on a
///     member and `RGAE_REQUIRES(mu_)` on a helper are *checked* by
///     `-Wthread-safety` (the `tsa` CMake preset builds with
///     `-Werror=thread-safety-analysis`): touching guarded state without
///     the lock fails the build, not the code review. On non-Clang
///     compilers every attribute macro expands to nothing.
///
///  2. **Runtime lock-order analysis.** With `RGAE_LOCKCHECK=1` the
///     wrappers report every acquisition/release to
///     `src/analysis/lockcheck`, which maintains per-thread held-lock
///     stacks and a global acquisition-order graph with cycle detection —
///     the dynamic complement that catches cross-mutex ordering inversions
///     (potential deadlocks), which per-capability static analysis cannot
///     express. Disabled, the hook costs one relaxed atomic load per
///     lock/unlock.
///
/// Every `Mutex` is constructed with a site name (`"ServeEngine.queue"`),
/// which is what lockcheck reports speak in.

// ---------------------------------------------------------------------------
// Clang thread-safety attribute macros. See
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html — the macro layer
// follows the reference mutex.h from that document, RGAE_-prefixed.
// ---------------------------------------------------------------------------
#if defined(__clang__) && defined(__has_attribute)
#define RGAE_TSA_HAS_ATTRIBUTE__(x) __has_attribute(x)
#else
#define RGAE_TSA_HAS_ATTRIBUTE__(x) 0
#endif

#if RGAE_TSA_HAS_ATTRIBUTE__(capability)
#define RGAE_TSA_ATTRIBUTE__(x) __attribute__((x))
#else
#define RGAE_TSA_ATTRIBUTE__(x)  // No-op outside Clang.
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define RGAE_CAPABILITY(x) RGAE_TSA_ATTRIBUTE__(capability(x))
/// Marks an RAII type that acquires in its constructor / releases in its
/// destructor.
#define RGAE_SCOPED_CAPABILITY RGAE_TSA_ATTRIBUTE__(scoped_lockable)
/// Data member readable/writable only with `x` held.
#define RGAE_GUARDED_BY(x) RGAE_TSA_ATTRIBUTE__(guarded_by(x))
/// Pointer member whose pointee requires `x` held.
#define RGAE_PT_GUARDED_BY(x) RGAE_TSA_ATTRIBUTE__(pt_guarded_by(x))
/// Declares the static acquisition order between two mutex members.
#define RGAE_ACQUIRED_BEFORE(...) \
  RGAE_TSA_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define RGAE_ACQUIRED_AFTER(...) \
  RGAE_TSA_ATTRIBUTE__(acquired_after(__VA_ARGS__))
/// Function requires the listed capabilities held on entry (and exit).
#define RGAE_REQUIRES(...) \
  RGAE_TSA_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define RGAE_REQUIRES_SHARED(...) \
  RGAE_TSA_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability (held on exit, not on entry).
#define RGAE_ACQUIRE(...) \
  RGAE_TSA_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on exit).
#define RGAE_RELEASE(...) \
  RGAE_TSA_ATTRIBUTE__(release_capability(__VA_ARGS__))
/// Function must NOT be called with the listed capabilities held
/// (deadlock guard for self-locking methods).
#define RGAE_EXCLUDES(...) \
  RGAE_TSA_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define RGAE_RETURN_CAPABILITY(x) RGAE_TSA_ATTRIBUTE__(lock_returned(x))
/// Escape hatch: the function's locking is intentionally invisible to the
/// analysis. Use sparingly, with a comment saying why.
#define RGAE_NO_THREAD_SAFETY_ANALYSIS \
  RGAE_TSA_ATTRIBUTE__(no_thread_safety_analysis)

namespace rgae {

/// Annotated exclusive mutex. Wraps `std::mutex`; carries a site name for
/// lockcheck reports and the Clang `capability` attribute for static
/// analysis. Non-copyable, non-movable (the address is the lock identity).
class RGAE_CAPABILITY("mutex") Mutex {
 public:
  /// `name` is the lock-site label lockcheck reports speak in; it must
  /// outlive the mutex (string literals in practice).
  explicit Mutex(const char* name) : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RGAE_ACQUIRE() {
    // Edges are recorded *before* blocking, so an inversion that would
    // deadlock for real is still reported first.
    if (analysis::LockCheckEnabled()) {
      analysis::LockCheckPreAcquire(this, name_);
    }
    mu_.lock();  // Raw sync: rgae::Mutex implementation.
    if (analysis::LockCheckEnabled()) {
      analysis::LockCheckPostAcquire(this, name_);
    }
  }

  void Unlock() RGAE_RELEASE() {
    if (analysis::LockCheckEnabled()) analysis::LockCheckRelease(this);
    mu_.unlock();  // Raw sync: rgae::Mutex implementation.
  }

  const char* name() const { return name_; }

 private:
  friend class CondVar;

  std::mutex mu_;  // Raw sync: rgae::Mutex implementation.
  const char* const name_;
};

/// RAII scope lock over `Mutex` (the project's `std::lock_guard`).
class RGAE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RGAE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RGAE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over `rgae::Mutex`. `Wait`/`WaitFor` take the mutex
/// (which the caller must hold — `RGAE_REQUIRES`) plus a predicate; the
/// predicate runs with the mutex held, so annotate its lambda with
/// `RGAE_REQUIRES(mu)` to keep guarded reads inside it checkable:
///
///   MutexLock lock(queue_mu_);
///   queue_cv_.Wait(queue_mu_, [this]() RGAE_REQUIRES(queue_mu_) {
///     return stop_ || !queue_.empty();
///   });
///
/// Lockcheck sees the wait as one release (on entry) and one re-acquisition
/// (on return); the transient wakeups inside the wait are not individually
/// reported, so a predicate must not acquire other `rgae::Mutex`es.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until `pred()` holds. Atomically releases `mu` while blocked.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) RGAE_REQUIRES(mu) {
    if (analysis::LockCheckEnabled()) analysis::LockCheckRelease(&mu);
    {
      // Adopt the already-held native mutex for the wait, then dissolve
      // the unique_lock without unlocking: ownership stays with the
      // caller's MutexLock scope.
      // Raw sync: CondVar implementation over the wrapped native handle.
      std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
      cv_.wait(native, std::move(pred));
      native.release();
    }
    if (analysis::LockCheckEnabled()) {
      analysis::LockCheckPostAcquire(&mu, mu.name());
    }
  }

  /// `Wait` with a relative timeout. Returns `pred()`'s value on wake-up
  /// (false = timed out with the predicate still unsatisfied).
  template <typename Pred>
  bool WaitFor(Mutex& mu, double seconds, Pred pred) RGAE_REQUIRES(mu) {
    if (analysis::LockCheckEnabled()) analysis::LockCheckRelease(&mu);
    bool satisfied;
    {
      // Raw sync: CondVar implementation over the wrapped native handle.
      std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
      satisfied = cv_.wait_for(native, std::chrono::duration<double>(seconds),
                               std::move(pred));
      native.release();
    }
    if (analysis::LockCheckEnabled()) {
      analysis::LockCheckPostAcquire(&mu, mu.name());
    }
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // Raw sync: rgae::CondVar implementation.
};

}  // namespace rgae

#endif  // RGAE_UTIL_SYNC_H_
