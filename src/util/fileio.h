#ifndef RGAE_UTIL_FILEIO_H_
#define RGAE_UTIL_FILEIO_H_

#include <string>

namespace rgae {

/// Crash-safe file replacement: writes `contents` to a temporary file in
/// the same directory as `path`, fsyncs it, renames it over `path`, and
/// fsyncs the directory. At every instant the target path holds either the
/// previous complete file or the new complete file — a process killed
/// mid-write (even `kill -9`) can never leave a torn file behind. All
/// durable emitters (checkpoints, bench `--json` documents, Chrome traces,
/// multiplex graph saves) go through this; only append-only sinks (JSONL
/// logs, the run journal) write in place, because appends of one line plus
/// fsync are already atomic enough for their line-oriented readers.
///
/// Returns false on any I/O error, with a descriptive message in `*error`
/// when non-null; the temporary file is unlinked on failure.
bool WriteFileAtomic(const std::string& path, const std::string& contents,
                     std::string* error = nullptr);

/// Reads the whole file into `*contents`. Returns false (filling `*error`
/// when non-null) when the file cannot be opened or read.
bool ReadFileToString(const std::string& path, std::string* contents,
                      std::string* error = nullptr);

}  // namespace rgae

#endif  // RGAE_UTIL_FILEIO_H_
