#include "src/util/binio.h"

#include <array>
#include <cstring>

namespace rgae {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const char* data, size_t size) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void BinaryWriter::U32(uint32_t v) {
  out_->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::U64(uint64_t v) {
  out_->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::I64(int64_t v) {
  out_->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::F64(double v) {
  out_->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::Str(const std::string& s) {
  U64(s.size());
  out_->append(s);
}

void BinaryWriter::Mat(const Matrix& m) {
  I64(m.rows());
  I64(m.cols());
  out_->append(reinterpret_cast<const char*>(m.data()),
               m.size() * sizeof(double));
}

void BinaryWriter::MatList(const std::vector<Matrix>& list) {
  U64(list.size());
  for (const Matrix& m : list) Mat(m);
}

void BinaryWriter::IntVec(const std::vector<int>& v) {
  U64(v.size());
  for (int x : v) I64(x);
}

bool BinaryReader::Raw(void* dst, size_t bytes) {
  if (size_ - pos_ < bytes) return false;
  std::memcpy(dst, data_ + pos_, bytes);
  pos_ += bytes;
  return true;
}

bool BinaryReader::U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
bool BinaryReader::U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
bool BinaryReader::I64(int64_t* v) { return Raw(v, sizeof(*v)); }
bool BinaryReader::F64(double* v) { return Raw(v, sizeof(*v)); }

bool BinaryReader::Str(std::string* s) {
  uint64_t len = 0;
  if (!U64(&len) || len > (1u << 28) || size_ - pos_ < len) return false;
  s->assign(data_ + pos_, static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return true;
}

bool BinaryReader::Mat(Matrix* m) {
  int64_t rows = 0, cols = 0;
  if (!I64(&rows) || !I64(&cols)) return false;
  if (rows < 0 || cols < 0 || rows > (int64_t{1} << 31) ||
      cols > (int64_t{1} << 31)) {
    return false;
  }
  const size_t bytes =
      static_cast<size_t>(rows) * static_cast<size_t>(cols) * sizeof(double);
  if (size_ - pos_ < bytes) return false;
  *m = Matrix(static_cast<int>(rows), static_cast<int>(cols));
  std::memcpy(m->data(), data_ + pos_, bytes);
  pos_ += bytes;
  return true;
}

bool BinaryReader::MatList(std::vector<Matrix>* list) {
  uint64_t count = 0;
  if (!U64(&count) || count > (1u << 20)) return false;
  list->resize(count);
  for (Matrix& m : *list) {
    if (!Mat(&m)) return false;
  }
  return true;
}

bool BinaryReader::IntVec(std::vector<int>* v) {
  uint64_t count = 0;
  if (!U64(&count) || count > (1u << 28)) return false;
  v->resize(count);
  for (int& x : *v) {
    int64_t raw = 0;
    if (!I64(&raw)) return false;
    x = static_cast<int>(raw);
  }
  return true;
}

bool BinaryReader::Skip(size_t bytes) {
  if (size_ - pos_ < bytes) return false;
  pos_ += bytes;
  return true;
}

}  // namespace rgae
