#include "src/core/health.h"

#include <algorithm>
#include <cmath>

#include "src/models/model.h"

namespace rgae {

const char* HealthStatusName(HealthStatus status) {
  switch (status) {
    case HealthStatus::kOk:
      return "ok";
    case HealthStatus::kNonFinite:
      return "non-finite";
    case HealthStatus::kDiverging:
      return "diverging";
    case HealthStatus::kDegenerateClusters:
      return "degenerate-clusters";
  }
  return "unknown";
}

bool AllFinite(const Matrix& m) {
  const double* p = m.data();
  for (size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

bool AllFinite(const std::vector<double>& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

NumericalGuard::NumericalGuard(const NumericalGuardOptions& options)
    : options_(options) {}

void NumericalGuard::Reset() { window_.clear(); }

HealthVerdict NumericalGuard::CheckStep(double loss, GaeModel* model) {
  HealthVerdict verdict;
  if (!std::isfinite(loss)) {
    verdict.status = HealthStatus::kNonFinite;
    verdict.detail = "loss is non-finite";
    return verdict;
  }
  if (options_.check_parameters && model != nullptr) {
    for (Parameter* p : model->Params()) {
      if (!AllFinite(p->value)) {
        verdict.status = HealthStatus::kNonFinite;
        verdict.detail =
            "parameter " + p->value.ShapeString() + " has non-finite entries";
        return verdict;
      }
    }
  }
  if (options_.loss_window > 1 &&
      static_cast<int>(window_.size()) >= options_.loss_window) {
    const double window_min = *std::min_element(window_.begin(), window_.end());
    const double threshold = window_min + options_.divergence_slack +
                             options_.divergence_factor * std::fabs(window_min);
    if (loss > threshold) {
      verdict.status = HealthStatus::kDiverging;
      verdict.detail = "loss " + std::to_string(loss) +
                       " exceeded divergence threshold " +
                       std::to_string(threshold);
      return verdict;
    }
  }
  window_.push_back(loss);
  while (static_cast<int>(window_.size()) > options_.loss_window) {
    window_.pop_front();
  }
  return verdict;
}

HealthVerdict NumericalGuard::CheckSoftAssignments(const Matrix& p) const {
  HealthVerdict verdict;
  if (p.empty()) return verdict;
  if (!AllFinite(p)) {
    verdict.status = HealthStatus::kNonFinite;
    verdict.detail = "soft assignments have non-finite entries";
    return verdict;
  }
  const double floor = options_.min_cluster_mass * p.rows();
  for (int c = 0; c < p.cols(); ++c) {
    double mass = 0.0;
    for (int i = 0; i < p.rows(); ++i) mass += p(i, c);
    if (mass < floor) {
      verdict.status = HealthStatus::kDegenerateClusters;
      verdict.detail = "cluster " + std::to_string(c) + " mass " +
                       std::to_string(mass) + " below floor " +
                       std::to_string(floor);
      return verdict;
    }
  }
  return verdict;
}

}  // namespace rgae
