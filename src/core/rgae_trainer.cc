#include "src/core/rgae_trainer.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "src/clustering/assignments.h"
#include "src/clustering/gmm.h"
#include "src/clustering/kmeans.h"
#include "src/core/fault_injection.h"
#include "src/metrics/fr_fd.h"
#include "src/metrics/hungarian.h"
#include "src/obs/log.h"
#include "src/obs/trace.h"

namespace rgae {

namespace {

// Raw timing: phase seconds are product fields on TrainResult, not an obs
// span (R8 opt-out).
double Seconds(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)  // Raw timing: see above.
      .count();
}

// Drops trace entries at or after the rollback target epoch so the trace
// reads as one consistent run.
void TruncateTrace(std::vector<EpochRecord>* trace, int epoch) {
  while (!trace->empty() && trace->back().epoch >= epoch) trace->pop_back();
}

}  // namespace

RGaeTrainer::RGaeTrainer(GaeModel* model, const TrainerOptions& options)
    : model_(model),
      options_(options),
      k_(options.num_clusters > 0 ? options.num_clusters
                                  : model->graph().num_clusters()),
      rng_(options.seed),
      self_graph_(model->graph()),
      initial_lr_(model->optimizer() != nullptr
                      ? model->optimizer()->learning_rate()
                      : 0.0) {
  assert(k_ >= 2);
  all_nodes_.resize(model_->graph().num_nodes());
  for (int i = 0; i < model_->graph().num_nodes(); ++i) all_nodes_[i] = i;
  RefreshReconTarget();
}

void RGaeTrainer::RefreshReconTarget() {
  self_adj_ = self_graph_.Adjacency();
  recon_ = MakeReconTarget(&self_adj_);
}

Matrix RGaeTrainer::CurrentSoftAssignments() {
  // Before InitClusteringHead (e.g. XiScores during pretraining) the head's
  // parameters are placeholders, so second-group models also take the GMM
  // path until the head is ready.
  if (model_->clustering_head_ready()) return model_->SoftAssignments();
  // First-group models: fit a GMM on the embedding (Eq. 15 style soft
  // scores come out of the responsibilities directly).
  const Matrix z = model_->Embed();
  Rng fork = rng_.Fork();
  const GmmModel gmm = FitGmm(z, k_, fork);
  return gmm.Responsibilities(z);
}

Matrix RGaeTrainer::XiScores() {
  const Matrix z = model_->Embed();
  const std::vector<int> hard = HardAssign(CurrentSoftAssignments());
  const Matrix means = ClusterMeans(z, hard, k_);
  return StudentTAssignments(z, means);
}

std::vector<int> RGaeTrainer::SelectOmega() {
  const Matrix scores = XiScores();
  const XiResult xi = OperatorXi(scores, options_.xi);
  if (!xi.omega.empty()) return xi.omega;
  const int n = static_cast<int>(xi.lambda1.size());
  const int want = std::max(k_, n / 20);
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + want, order.end(),
                    [&](int a, int b) {
                      return xi.lambda1[a] > xi.lambda1[b];
                    });
  std::vector<int> omega(order.begin(), order.begin() + want);
  std::sort(omega.begin(), omega.end());
  return omega;
}

ClusteringScores RGaeTrainer::EvaluateNow(std::vector<int>* assignments) {
  const Matrix p = CurrentSoftAssignments();
  std::vector<int> hard = HardAssign(p);
  ClusteringScores scores;
  if (model_->graph().has_labels()) {
    scores = Evaluate(hard, model_->graph().labels());
  }
  if (assignments != nullptr) *assignments = std::move(hard);
  return scores;
}

void RGaeTrainer::ApplyUpsilon(const std::vector<int>& omega,
                               UpsilonStats* stats) {
  const Matrix z = model_->Embed();
  // Use the Ξ scores so Ω membership and Υ's cluster ids agree.
  const Matrix p = XiScores();
  self_graph_ = OperatorUpsilon(model_->graph(), z, p, omega,
                                options_.upsilon, stats);
  RefreshReconTarget();
}

CsrMatrix RGaeTrainer::SupervisedOrientedGraph() {
  // Υ(A, Q', 𝒱): the clustering-oriented graph built from the supervisory
  // signal over all nodes (used by the Λ_FD diagnostic, Eq. 7).
  assert(model_->graph().has_labels());
  const Matrix z = model_->Embed();
  const Matrix q = OneHot(model_->graph().labels(), k_);
  UpsilonOptions full;  // add + drop, regardless of ablations.
  const AttributedGraph oriented =
      OperatorUpsilon(model_->graph(), z, q, all_nodes_, full);
  return oriented.Adjacency();
}

int RGaeTrainer::CheckpointEvery() const {
  return options_.resilience.checkpoint_every > 0
             ? options_.resilience.checkpoint_every
             : options_.m2;
}

void RGaeTrainer::CaptureTrainerState(int epoch, bool pretrain,
                                      const std::vector<int>& omega,
                                      TrainerCheckpoint* ckpt) {
  ckpt->model = CaptureModel(model_);
  ckpt->self_graph = self_graph_;
  ckpt->omega = omega;
  ckpt->epoch = epoch;
  ckpt->pretrain = pretrain;
}

bool RGaeTrainer::RecoverOrFail(const HealthVerdict& verdict, bool pretrain,
                                int epoch, const TrainerCheckpoint& ckpt,
                                NumericalGuard* guard,
                                std::vector<int>* omega) {
  HealthEvent event;
  event.epoch = epoch;
  event.pretrain = pretrain;
  event.status = verdict.status;

  const bool recoverable =
      !ckpt.empty() && rollbacks_ < options_.resilience.max_rollbacks;
  if (recoverable) {
    std::string restore_error;
    if (RestoreModel(ckpt.model, model_, &restore_error)) {
      ++rollbacks_;
      self_graph_ = ckpt.self_graph;
      RefreshReconTarget();
      if (omega != nullptr) *omega = ckpt.omega;
      // Bounded geometric backoff: even a deterministic divergence replays
      // with a strictly smaller step each retry. Anchored on the trainer's
      // initial rate, not the checkpoint's captured one — a checkpoint
      // taken after an LR corruption (e.g. an injected spike) would
      // otherwise bake the corrupted rate into every retry.
      const double lr = initial_lr_ *
                        std::pow(options_.resilience.lr_backoff, rollbacks_);
      if (model_->optimizer() != nullptr) {
        model_->optimizer()->set_learning_rate(lr);
      }
      guard->Reset();
      event.action = verdict.detail + "; rollback to epoch " +
                     std::to_string(ckpt.epoch) + ", lr " + std::to_string(lr);
      RGAE_COUNT("trainer.rollbacks");
      RGAE_LOG(kWarn)
          .Event("trainer.rollback")
          .Field("trial", options_.trial_id)
          .Field("phase", pretrain ? "pretrain" : "cluster")
          .Field("epoch", epoch)
          .Field("status", HealthStatusName(verdict.status))
          .Field("target_epoch", ckpt.epoch)
          .Field("lr", lr)
          .Field("rollbacks", rollbacks_)
          .Msg(verdict.detail);
      health_log_.push_back(std::move(event));
      return true;
    }
    event.action = verdict.detail + "; restore failed: " + restore_error;
  } else {
    event.action = verdict.detail + "; rollback budget exhausted";
  }

  // Unrecoverable: report the trial failed, but leave the model on its last
  // good state so downstream evaluation stays finite.
  failed_ = true;
  failure_reason_ = std::string(pretrain ? "pretrain" : "cluster") +
                    " epoch " + std::to_string(epoch) + ": " + verdict.detail +
                    " (" + std::to_string(rollbacks_) + " rollbacks)";
  if (!ckpt.empty()) RestoreModel(ckpt.model, model_);
  event.action += "; trial failed";
  RGAE_COUNT("trainer.trials_failed");
  RGAE_LOG(kError)
      .Event("trainer.failed")
      .Field("trial", options_.trial_id)
      .Field("phase", pretrain ? "pretrain" : "cluster")
      .Field("epoch", epoch)
      .Field("status", HealthStatusName(verdict.status))
      .Field("rollbacks", rollbacks_)
      .Msg(verdict.detail);
  health_log_.push_back(std::move(event));
  return false;
}

bool RGaeTrainer::DeadlineExpired(bool pretrain, int epoch) {
  const bool stop = GlobalStopRequested();
  if (!stop && !options_.deadline.expired()) return false;
  timed_out_ = true;
  RGAE_COUNT("trainer.timeouts");
  RGAE_LOG(kWarn)
      .Event("trainer.deadline")
      .Field("trial", options_.trial_id)
      .Field("phase", pretrain ? "pretrain" : "cluster")
      .Field("epoch", epoch)
      .Field("cause", stop ? "interrupted" : "deadline")
      .Msg("trial budget exhausted; stopping at epoch boundary");
  return true;
}

bool RGaeTrainer::Pretrain() {
  RGAE_SPAN("train.pretrain");
  TrainContext ctx;
  ctx.recon = recon_;
  ctx.include_clustering = false;
  const bool first_group = !model_->has_clustering_head();
  const bool resilient = options_.resilience.enabled;
  NumericalGuard guard(options_.resilience.guard);
  TrainerCheckpoint ckpt;

  int epoch = 0;
  while (epoch < options_.pretrain_epochs) {
    if (timed_out_ || DeadlineExpired(/*pretrain=*/true, epoch)) break;
    RGAE_SPAN("epoch.pretrain");
    RGAE_COUNT("trainer.epochs.pretrain");
    // First-group R-models: gradually transform the reconstruction target
    // during pretraining (Section 5.1 protocol).
    if (first_group && options_.use_operators &&
        epoch >= options_.first_group_transform_start &&
        (epoch - options_.first_group_transform_start) % options_.m2 == 0) {
      ApplyUpsilon(SelectOmega(), nullptr);
      ctx.recon = recon_;
    }
    if (resilient && epoch % CheckpointEvery() == 0) {
      CaptureTrainerState(epoch, /*pretrain=*/true, {}, &ckpt);
    }
    if (options_.fault_injector != nullptr) {
      options_.fault_injector->Apply(/*pretrain=*/true, epoch, model_);
    }
    const double loss = model_->TrainStep(ctx);
    if (resilient) {
      const HealthVerdict verdict = guard.CheckStep(loss, model_);
      if (!verdict.ok()) {
        if (!RecoverOrFail(verdict, /*pretrain=*/true, epoch, ckpt, &guard,
                           nullptr)) {
          return false;
        }
        pretrain_health_.resize(ckpt.epoch);
        ctx.recon = recon_;
        epoch = ckpt.epoch;
        continue;
      }
      pretrain_health_.push_back(verdict.status);
    }
    ++epoch;
  }
  return true;
}

TrainResult RGaeTrainer::TrainClustering() {
  RGAE_SPAN("train.cluster");
  TrainResult result;
  const auto begin = std::chrono::steady_clock::now();  // Raw timing: phase clock.
  const int n = model_->graph().num_nodes();

  if (!model_->has_clustering_head() || failed_) {
    // First-group models perform clustering separately from embedding
    // learning: evaluate the (possibly Υ-transformed) pretrained embedding.
    // A run whose pretraining already failed is evaluated at its last good
    // checkpoint and reported as failed instead of trained further.
    result.scores = EvaluateNow(&result.assignments);
    result.cluster_seconds = Seconds(begin);
    result.failed = failed_;
    result.failure_reason = failure_reason_;
    result.timed_out = timed_out_;
    result.rollbacks = rollbacks_;
    result.health_log = health_log_;
    result.pretrain_health = pretrain_health_;
    return result;
  }

  {
    Rng fork = rng_.Fork();
    model_->InitClusteringHead(k_, fork);
  }

  // Table 7 protection mode: one-shot transformation over the whole 𝒱.
  if (options_.use_operators && options_.fd_protection) {
    ApplyUpsilon(all_nodes_, nullptr);
  }

  std::vector<int> omega;  // Empty = clustering loss over all nodes.
  TrainContext ctx;
  ctx.include_clustering = true;
  ctx.gamma = options_.gamma;

  const bool resilient = options_.resilience.enabled;
  NumericalGuard guard(options_.resilience.guard);
  TrainerCheckpoint ckpt;

  int epoch = 0;
  while (epoch < options_.max_cluster_epochs) {
    if (timed_out_ || DeadlineExpired(/*pretrain=*/false, epoch)) break;
    RGAE_SPAN("epoch.cluster");
    RGAE_COUNT("trainer.epochs.cluster");
    const bool xi_active =
        options_.use_operators && epoch >= options_.xi_delay_epochs;
    // Refresh Ω every M₁ epochs.
    if (xi_active &&
        (epoch == options_.xi_delay_epochs ||
         (epoch - options_.xi_delay_epochs) % options_.m1 == 0)) {
      omega = SelectOmega();
    }
    // Refresh A^self_clus every M₂ epochs (gradual correction mode only).
    EpochRecord record;
    record.epoch = epoch;
    if (options_.use_operators && !options_.fd_protection &&
        epoch % options_.m2 == 0) {
      ApplyUpsilon(xi_active ? omega : all_nodes_, &record.upsilon_stats);
      record.upsilon_ran = true;
    }
    // Snapshot before the step (and before any injected fault) so a
    // rollback lands on a state the guard has vetted.
    if (resilient && epoch % CheckpointEvery() == 0) {
      CaptureTrainerState(epoch, /*pretrain=*/false, omega, &ckpt);
    }
    if (options_.fault_injector != nullptr) {
      options_.fault_injector->Apply(/*pretrain=*/false, epoch, model_);
    }
    ctx.recon = recon_;
    ctx.omega = xi_active ? omega : std::vector<int>();
    record.loss = model_->TrainStep(ctx);

    if (resilient) {
      HealthVerdict verdict = guard.CheckStep(record.loss, model_);
      if (verdict.ok()) {
        verdict = guard.CheckSoftAssignments(model_->SoftAssignments());
      }
      if (!verdict.ok()) {
        if (!RecoverOrFail(verdict, /*pretrain=*/false, epoch, ckpt, &guard,
                           &omega)) {
          break;
        }
        TruncateTrace(&result.trace, ckpt.epoch);
        result.cluster_epochs_run = ckpt.epoch;
        epoch = ckpt.epoch;
        continue;
      }
      record.health = verdict.status;
    }

    if ((options_.track_fr_fd || options_.track_dynamics ||
         options_.track_scores) &&
        epoch % options_.track_every == 0) {
      TrackEpoch(&record, xi_active ? omega : all_nodes_);
    }
    result.trace.push_back(std::move(record));
    result.cluster_epochs_run = epoch + 1;

    // Convergence: |Ω| ≥ fraction · |𝒱| (R-models only).
    if (options_.use_operators && xi_active &&
        static_cast<double>(omega.size()) >=
            options_.convergence_fraction * n) {
      break;
    }
    ++epoch;
  }

  result.scores = EvaluateNow(&result.assignments);
  result.cluster_seconds = Seconds(begin);
  result.failed = failed_;
  result.failure_reason = failure_reason_;
  result.timed_out = timed_out_;
  result.rollbacks = rollbacks_;
  result.health_log = health_log_;
  result.pretrain_health = pretrain_health_;
  return result;
}

void RGaeTrainer::TrackEpoch(EpochRecord* record,
                             const std::vector<int>& omega) {
  const AttributedGraph& graph = model_->graph();
  const Matrix p = CurrentSoftAssignments();
  const std::vector<int> hard = HardAssign(p);

  if (options_.track_scores && graph.has_labels()) {
    const ClusteringScores s = Evaluate(hard, graph.labels());
    record->acc = s.acc;
    record->nmi = s.nmi;
    record->ari = s.ari;
    record->separability =
        SeparabilityRatio(model_->Embed(), graph.labels(), k_);
  }

  if (options_.track_dynamics) {
    record->omega_size = static_cast<int>(omega.size());
    if (graph.has_labels() && !omega.empty()) {
      const std::vector<int> aligned =
          AlignLabels(hard, graph.labels(), k_);
      int omega_correct = 0;
      std::vector<char> in_omega(graph.num_nodes(), 0);
      for (int i : omega) in_omega[i] = 1;
      int rest_correct = 0;
      const int rest = graph.num_nodes() - static_cast<int>(omega.size());
      for (int i = 0; i < graph.num_nodes(); ++i) {
        const bool ok = aligned[i] == graph.labels()[i];
        if (in_omega[i]) {
          omega_correct += ok ? 1 : 0;
        } else {
          rest_correct += ok ? 1 : 0;
        }
      }
      record->omega_acc =
          static_cast<double>(omega_correct) / omega.size();
      record->rest_acc =
          rest > 0 ? static_cast<double>(rest_correct) / rest : 0.0;
    }
    record->self_links = self_graph_.num_edges();
    if (graph.has_labels()) {
      int true_links = 0;
      for (const auto& [a, b] : self_graph_.edges()) {
        if (graph.labels()[a] == graph.labels()[b]) ++true_links;
      }
      record->self_true_links = true_links;
      record->self_false_links = self_graph_.num_edges() - true_links;
    }
  }

  if (options_.track_fr_fd && graph.has_labels()) {
    // Λ_FR (Eq. 4): pseudo-supervised vs supervised clustering gradients.
    const std::vector<double> grad_sup =
        model_->ClusteringGradSnapshot(graph.labels(), k_, {});
    const std::vector<double> grad_plain =
        model_->ClusteringGradSnapshot(hard, k_, {});
    // For the R metric, use the actual Ω when the operators are on, or the
    // hypothetical Ξ selection otherwise (the gold curves of Figs. 5-6).
    std::vector<int> r_omega = omega;
    if (!options_.use_operators) {
      r_omega = OperatorXi(XiScores(), options_.xi).omega;
    }
    const std::vector<double> grad_r =
        model_->ClusteringGradSnapshot(hard, k_, r_omega);
    record->lambda_fr_plain = FlatCosine(grad_plain, grad_sup);
    record->lambda_fr_r = FlatCosine(grad_r, grad_sup);

    // Λ_FD (Eq. 7): self-supervised vs supervised reconstruction gradients.
    CsrMatrix oriented = SupervisedOrientedGraph();
    const ReconTarget sup_target = MakeReconTarget(&oriented);
    const std::vector<double> gfd_sup = model_->ReconGradSnapshot(sup_target);
    const CsrMatrix plain_adj = graph.Adjacency();
    const ReconTarget plain_target = MakeReconTarget(&plain_adj);
    const std::vector<double> gfd_plain =
        model_->ReconGradSnapshot(plain_target);
    // R-target: the current transformed graph if operators are on,
    // otherwise a hypothetical one-step Υ(A, P(Ξ(Z)), Ω).
    std::vector<double> gfd_r;
    if (options_.use_operators) {
      gfd_r = model_->ReconGradSnapshot(recon_);
    } else {
      const Matrix xi_scores = XiScores();
      const XiResult xi = OperatorXi(xi_scores, options_.xi);
      const AttributedGraph hypo = OperatorUpsilon(
          graph, model_->Embed(), xi_scores, xi.omega, options_.upsilon);
      CsrMatrix hypo_adj = hypo.Adjacency();
      const ReconTarget hypo_target = MakeReconTarget(&hypo_adj);
      gfd_r = model_->ReconGradSnapshot(hypo_target);
    }
    record->lambda_fd_plain = FlatCosine(gfd_plain, gfd_sup);
    record->lambda_fd_r = FlatCosine(gfd_r, gfd_sup);
  }
}

TrainResult RGaeTrainer::Run() {
  const auto begin = std::chrono::steady_clock::now();  // Raw timing: phase clock.
  Pretrain();  // A failed pretrain short-circuits TrainClustering.
  const double pretrain_seconds = Seconds(begin);
  TrainResult result = TrainClustering();
  result.pretrain_seconds = pretrain_seconds;
  return result;
}

}  // namespace rgae
