#include "src/core/operators.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "src/clustering/assignments.h"
#include "src/kernels/kernels.h"
#include "src/obs/trace.h"

namespace rgae {

XiResult OperatorXi(const Matrix& soft_assignments, const XiOptions& options) {
  RGAE_TIMED_KERNEL("op.xi");
  const int n = soft_assignments.rows();
  const int k = soft_assignments.cols();
  // Cost model: one comparison sweep over the n·k assignment matrix.
  RGAE_KERNEL_WORK("op.xi", static_cast<int64_t>(n) * k,
                   8LL * n * k);
  assert(k >= 2);
  XiResult result;
  result.lambda1.resize(n);
  result.lambda2.resize(n);
  const double alpha2 = options.EffectiveAlpha2();
  // First and second high-confidence scores (Eqs. 16-17).
  kernels::TopTwo(soft_assignments.data(), n, k, result.lambda1.data(),
                  result.lambda2.data());
  for (int i = 0; i < n; ++i) {
    const double l1 = result.lambda1[i];
    const double l2 = result.lambda2[i];
    const bool pass1 = !options.use_alpha1 || l1 >= options.alpha1;
    const bool pass2 = !options.use_alpha2 || (l1 - l2) >= alpha2;
    if (pass1 && pass2) result.omega.push_back(i);
  }
  if (obs::Enabled()) {
    RGAE_COUNT("op.xi.calls");
    static obs::Gauge* const omega_size =
        obs::MetricsRegistry::Global().GetGauge("op.xi.omega_size");
    omega_size->Set(static_cast<double>(result.omega.size()));
  }
  return result;
}

Matrix SoftenHardAssignments(const Matrix& z,
                             const std::vector<int>& hard_assignments,
                             int k) {
  const Matrix variances = ClusterVariances(z, hard_assignments, k);
  // Cluster representatives = per-cluster means of the embeddings.
  Matrix means(k, z.cols());
  std::vector<int> counts(k, 0);
  for (int i = 0; i < z.rows(); ++i) {
    const int c = hard_assignments[i];
    ++counts[c];
    for (int j = 0; j < z.cols(); ++j) means(c, j) += z(i, j);
  }
  for (int c = 0; c < k; ++c) {
    if (counts[c] > 0) {
      for (int j = 0; j < z.cols(); ++j) means(c, j) /= counts[c];
    }
  }
  return GaussianSoftAssignments(z, means, variances);
}

AttributedGraph OperatorUpsilon(const AttributedGraph& original,
                                const Matrix& z, const Matrix& p,
                                const std::vector<int>& omega,
                                const UpsilonOptions& options,
                                UpsilonStats* stats) {
  RGAE_TIMED_KERNEL("op.upsilon");
  const int k = p.cols();
  assert(z.rows() == original.num_nodes() && p.rows() == original.num_nodes());
  UpsilonStats local_stats;
  UpsilonStats* st = stats != nullptr ? stats : &local_stats;
  *st = UpsilonStats();
  st->centroids.assign(k, -1);

  AttributedGraph out = original;  // A^self_clus starts from A (Alg. 2, l.4).
  if (omega.empty()) return out;

  const std::vector<int> hard = HardAssign(p);

  // Guideline 1: per-cluster mean of reliable embeddings, then Π[j] =
  // 1-NN(μ̃_j, Ω).
  Matrix mu(k, z.cols());
  std::vector<int> counts(k, 0);
  for (int i : omega) {
    const int c = hard[i];
    ++counts[c];
    for (int j = 0; j < z.cols(); ++j) mu(c, j) += z(i, j);
  }
  for (int c = 0; c < k; ++c) {
    if (counts[c] > 0) {
      for (int j = 0; j < z.cols(); ++j) mu(c, j) /= counts[c];
    }
  }
  for (int c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;  // No reliable node for this cluster yet.
    double best = std::numeric_limits<double>::max();
    for (int i : omega) {
      const double d = RowSquaredDistance(z, i, mu, c);
      if (d < best) {
        best = d;
        st->centroids[c] = i;
      }
    }
  }

  // Guideline 2: add star edges; drop cross-cluster edges within Ω.
  std::vector<char> in_omega(original.num_nodes(), 0);
  for (int i : omega) in_omega[i] = 1;
  const bool labeled = original.has_labels();
  // Adjacency lists of the original graph, built once.
  std::vector<std::vector<int>> neighbors(original.num_nodes());
  for (const auto& [a, b] : original.edges()) {
    neighbors[a].push_back(b);
    neighbors[b].push_back(a);
  }
  for (int i : omega) {
    const int k1 = hard[i];
    const int centroid = st->centroids[k1];
    if (options.add_edges && centroid >= 0 && centroid != i &&
        !out.HasEdge(i, centroid)) {
      // Only connect when the centroid itself agrees on the cluster.
      if (hard[centroid] == k1 && out.AddEdge(i, centroid)) {
        ++st->added_edges;
        if (labeled) {
          if (original.labels()[i] == original.labels()[centroid]) {
            ++st->added_true;
          } else {
            ++st->added_false;
          }
        }
      }
    }
    if (options.drop_edges) {
      // Iterate over the *original* neighborhood of i (Alg. 2, l.12).
      for (int l : neighbors[i]) {
        if (in_omega[l] && hard[l] != k1) {
          if (out.RemoveEdge(i, l)) {
            ++st->dropped_edges;
            if (labeled) {
              if (original.labels()[i] == original.labels()[l]) {
                ++st->dropped_true;
              } else {
                ++st->dropped_false;
              }
            }
          }
        }
      }
    }
  }
  if (obs::Enabled()) {
    RGAE_COUNT("op.upsilon.calls");
    static obs::Counter* const added =
        obs::MetricsRegistry::Global().GetCounter("op.upsilon.added_edges");
    static obs::Counter* const dropped =
        obs::MetricsRegistry::Global().GetCounter("op.upsilon.dropped_edges");
    added->Inc(st->added_edges);
    dropped->Inc(st->dropped_edges);
  }
  return out;
}

}  // namespace rgae
