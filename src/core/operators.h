#ifndef RGAE_CORE_OPERATORS_H_
#define RGAE_CORE_OPERATORS_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/matrix.h"

namespace rgae {

/// Configuration of the sampling operator Ξ (Algorithm 1). `alpha2 < 0`
/// selects the paper's default α₂ = α₁ / 2. The `use_alpha*` switches
/// implement the Table-8 ablations (a disabled criterion always passes).
struct XiOptions {
  double alpha1 = 0.3;
  double alpha2 = -1.0;
  bool use_alpha1 = true;
  bool use_alpha2 = true;

  double EffectiveAlpha2() const { return alpha2 < 0.0 ? alpha1 / 2.0 : alpha2; }
};

/// Output of operator Ξ.
struct XiResult {
  /// Reliable ("decidable") node ids Ω, ascending.
  std::vector<int> omega;
  /// First high-confidence score λ¹ per node (Eq. 16).
  std::vector<double> lambda1;
  /// Second high-confidence score λ² per node (Eq. 17).
  std::vector<double> lambda2;
};

/// Operator Ξ — the protection mechanism against Feature Randomness.
///
/// Takes the soft clustering-assignment matrix P' (n x K, rows on the
/// simplex; when the base model produces hard assignments, convert them
/// first with `SoftenHardAssignments`) and selects the nodes whose first
/// high-confidence score clears α₁ and whose (λ¹ - λ²) margin clears α₂
/// (Eq. 18). Complexity O(N·K), O(N·K²·d) including the Eq.-15 softening.
XiResult OperatorXi(const Matrix& soft_assignments, const XiOptions& options);

/// Eq. (15): converts hard assignments into soft scores by Gaussian
/// similarity to the cluster representatives under per-cluster diagonal
/// variances, both estimated from the embeddings.
Matrix SoftenHardAssignments(const Matrix& z,
                             const std::vector<int>& hard_assignments, int k);

/// Configuration of the graph-transforming operator Υ (Algorithm 2). The
/// switches implement the Table-9 ablations.
struct UpsilonOptions {
  bool add_edges = true;
  bool drop_edges = true;
};

/// Statistics of one Υ application (drives the Fig. 4/9 benches).
struct UpsilonStats {
  int added_edges = 0;
  int added_true = 0;    // Added edges joining same-ground-truth-label nodes.
  int added_false = 0;
  int dropped_edges = 0;
  int dropped_true = 0;  // Dropped edges that joined same-label nodes.
  int dropped_false = 0;
  std::vector<int> centroids;  // Π: one representative node per cluster.
};

/// Operator Υ — the correction mechanism against Feature Drift.
///
/// Starting from the *original* sparse graph A, connects each reliable node
/// with its cluster's centroid node (Π, the Ω-member nearest to the mean of
/// the reliable embeddings of that cluster) when both agree on the cluster,
/// and drops edges between reliable nodes of different clusters. The result
/// converges to K star-shaped sub-graphs as Ω → 𝒱.
///
/// `z` are the embeddings, `p` the soft assignments (n x K), `omega` the
/// reliable set from Ξ (pass all of 𝒱 for the one-shot protection variant).
/// If `stats` is non-null and the graph has labels, edge-quality statistics
/// are recorded.
AttributedGraph OperatorUpsilon(const AttributedGraph& original,
                                const Matrix& z, const Matrix& p,
                                const std::vector<int>& omega,
                                const UpsilonOptions& options,
                                UpsilonStats* stats = nullptr);

}  // namespace rgae

#endif  // RGAE_CORE_OPERATORS_H_
