#ifndef RGAE_CORE_RGAE_TRAINER_H_
#define RGAE_CORE_RGAE_TRAINER_H_

#include <string>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/deadline.h"
#include "src/core/health.h"
#include "src/core/operators.h"
#include "src/metrics/clustering_metrics.h"
#include "src/models/model.h"

namespace rgae {

class FaultInjector;

/// Failure-handling policy threaded through both training phases. When
/// enabled, the trainer snapshots a `TrainerCheckpoint` every
/// `checkpoint_every` epochs and runs the `NumericalGuard` after every
/// step; on a bad verdict it rolls back to the last good snapshot and
/// retries with a geometrically backed-off learning rate. After
/// `max_rollbacks` recoveries the run is marked failed (see
/// `TrainResult::failed`) instead of crashing or silently emitting NaNs.
struct ResilienceOptions {
  bool enabled = false;
  NumericalGuardOptions guard;
  /// Snapshot period in epochs; 0 derives it from `TrainerOptions::m2`.
  int checkpoint_every = 0;
  /// Recovery budget before the trial is declared failed.
  int max_rollbacks = 3;
  /// Learning-rate multiplier per rollback: retry r runs at
  /// `initial_lr * lr_backoff^r` (anchored on the trainer's starting rate
  /// so a corrupted live rate cannot leak into the retries).
  double lr_backoff = 0.5;
};

/// Training schedule implementing the paper's conceptual design (Eq. 6) on
/// top of any `GaeModel`. With `use_operators == false` this degrades to the
/// original model's training loop, so a couple (𝒟, R-𝒟) differs *only* by
/// the operators — exactly the paper's comparison protocol.
struct TrainerOptions {
  int pretrain_epochs = 100;
  int max_cluster_epochs = 150;
  /// Reconstruction weight γ in L_clus + γ L_bce (Eq. 5).
  double gamma = 0.1;
  /// Number of clusters K; 0 derives it from the graph labels.
  int num_clusters = 0;

  /// Master switch: R-𝒟 when true, plain 𝒟 when false.
  bool use_operators = false;
  XiOptions xi;
  UpsilonOptions upsilon;
  /// Refresh period of Ω (M₁) and of A^self_clus (M₂), in epochs.
  int m1 = 20;
  int m2 = 10;
  /// For first-group models: epoch of the pretraining phase at which the
  /// operators start transforming the reconstruction target.
  int first_group_transform_start = 50;
  /// Table 6: delay (epochs) before Ξ starts sampling; 0 = protection mode.
  int xi_delay_epochs = 0;
  /// Table 7: apply Υ once to the whole node set 𝒱 at the start
  /// (protection-style FD handling) instead of gradually over Ω.
  bool fd_protection = false;
  /// Stop the clustering phase once |Ω| ≥ fraction · |𝒱| (R-models only).
  double convergence_fraction = 0.9;

  /// Record Λ_FR / Λ_FD diagnostics per epoch (adds gradient snapshots).
  bool track_fr_fd = false;
  /// Diagnostics sampling period (1 = every epoch). Gradient snapshots are
  /// as expensive as training steps; figure benches thin them out.
  int track_every = 1;
  /// Record |Ω|, per-subset accuracy, self-graph link statistics per epoch.
  bool track_dynamics = false;
  /// Record ACC/NMI/ARI per epoch (fits a GMM for first-group models).
  bool track_scores = false;

  /// Numerical-health guards + checkpoint/rollback recovery.
  ResilienceOptions resilience;
  /// Borrowed test/bench hook that corrupts model state on a schedule
  /// (see core/fault_injection.h); must outlive the trainer. Null in
  /// production runs.
  FaultInjector* fault_injector = nullptr;

  /// Trial index within a multi-trial harness run; -1 outside one. Carried
  /// into every structured-log record the trainer emits (see src/obs/log.h)
  /// so rollback/failure events are attributable to their trial.
  int trial_id = -1;

  /// Wall-clock budget for the whole trial (both phases share it), checked
  /// at epoch boundaries only. When it expires the current phase stops at
  /// the next boundary and the trial returns a partial `TrainResult` with
  /// `timed_out` set — it never hangs a table bench. The harness's retry
  /// ladder (see eval/harness.h) decides what happens to such a trial.
  /// Default: unlimited.
  Deadline deadline;

  uint64_t seed = 7;
};

/// One row of the training trace; negative values mean "not tracked".
struct EpochRecord {
  int epoch = 0;
  double loss = 0.0;
  double acc = -1.0, nmi = -1.0, ari = -1.0;
  /// Λ_FR of the plain model (Ω = 𝒱) and of the R-model (Ω from Ξ),
  /// both computed at the current state (Fig. 5 semantics).
  double lambda_fr_plain = -2.0, lambda_fr_r = -2.0;
  /// Λ_FD against A (plain) and against Υ(A, P(Ξ(Z)), Ω) (R) (Fig. 6).
  double lambda_fd_plain = -2.0, lambda_fd_r = -2.0;
  int omega_size = -1;
  double omega_acc = -1.0;   // ACC restricted to Ω.
  double rest_acc = -1.0;    // ACC on 𝒱 \ Ω.
  int self_links = -1;       // Edges of the current self-supervision graph.
  int self_true_links = -1;  // ... joining same-label endpoints.
  int self_false_links = -1;
  UpsilonStats upsilon_stats;  // Valid on epochs where Υ ran.
  bool upsilon_ran = false;
  double separability = -1.0;  // Fig. 10 numeric proxy.
  /// Guard verdict for this epoch (kOk unless resilience is enabled and the
  /// epoch survived a non-fatal observation; rolled-back epochs are erased
  /// from the trace, so their verdicts live in `TrainResult::health_log`).
  HealthStatus health = HealthStatus::kOk;
};

/// Result of a full train run.
struct TrainResult {
  ClusteringScores scores;
  std::vector<int> assignments;
  std::vector<EpochRecord> trace;
  double pretrain_seconds = 0.0;
  double cluster_seconds = 0.0;
  int cluster_epochs_run = 0;

  /// True when the resilience layer exhausted its rollback budget; the
  /// scores then reflect the last good checkpoint, not a converged run,
  /// and `AggregateTrials` excludes the trial.
  bool failed = false;
  std::string failure_reason;
  /// True when `TrainerOptions::deadline` expired (or a global stop was
  /// requested) before the schedule completed: the run stopped at an epoch
  /// boundary and the scores reflect the partial state reached by then.
  /// Orthogonal to `failed` — a timed-out run is numerically healthy.
  bool timed_out = false;
  /// Number of checkpoint rollbacks performed across both phases.
  int rollbacks = 0;
  /// Bad verdicts and the recovery actions taken (empty in healthy runs).
  std::vector<HealthEvent> health_log;
  /// Per-epoch guard verdicts of the pretraining phase (resilience only).
  std::vector<HealthStatus> pretrain_health;
};

/// Drives pretraining + clustering for one model instance.
class RGaeTrainer {
 public:
  /// `model` is borrowed and must outlive the trainer.
  RGaeTrainer(GaeModel* model, const TrainerOptions& options);

  /// Runs the reconstruction pretraining phase. For first-group R-models
  /// the operators gradually transform the reconstruction target during
  /// this phase (the paper's Section 5.1 protocol). Returns false when the
  /// resilience layer gave up on the phase (always true otherwise); the
  /// failure details are available via `failed()` / `failure_reason()`.
  bool Pretrain();

  /// Runs the clustering phase (joint embedding + clustering for
  /// second-group models; a no-op refinement returning the pretrained
  /// embedding evaluation for first-group models) and evaluates.
  TrainResult TrainClustering();

  /// Pretrain + TrainClustering.
  TrainResult Run();

  /// Current soft assignments P: the model head when present, otherwise a
  /// GMM fitted on the embedding.
  Matrix CurrentSoftAssignments();

  /// Soft scores fed to operator Ξ. Gaussian posteriors (GMM heads, Eq. 15)
  /// saturate to one-hot rows on well-separated embeddings, which would
  /// snap Ω to 𝒱 in one step; the trainer therefore scores reliability
  /// with the heavy-tailed Student-t kernel (the Eq. 20 kernel DGAE uses)
  /// against the current clusters' means, keeping the two-criteria
  /// selection of Eq. 18 meaningfully gradual. See DESIGN.md §2.
  Matrix XiScores();

  /// Hard predictions + external scores at the current state.
  ClusteringScores EvaluateNow(std::vector<int>* assignments = nullptr);

  GaeModel* model() { return model_; }
  const TrainerOptions& options() const { return options_; }
  int num_clusters() const { return k_; }

  /// The current self-supervision graph A^self_clus.
  const AttributedGraph& self_graph() const { return self_graph_; }

  /// Resilience outcome so far (useful between `Pretrain` and
  /// `TrainClustering`; `TrainResult` carries the same data for full runs).
  bool failed() const { return failed_; }
  bool timed_out() const { return timed_out_; }
  const std::string& failure_reason() const { return failure_reason_; }
  int rollbacks() const { return rollbacks_; }
  const std::vector<HealthEvent>& health_log() const { return health_log_; }

 private:
  // Runs Ξ on the current scores. If α₁/α₂ reject every node (the paper
  // tunes α₁ as the largest value yielding a non-empty Ω), falls back to
  // the most confident max(K, 5% of 𝒱) nodes so protection never silently
  // degrades into training on all nodes.
  std::vector<int> SelectOmega();
  // Rebuilds self_adj_ / recon_ from self_graph_.
  void RefreshReconTarget();
  // Applies Υ with the given reliable set and updates the recon target.
  void ApplyUpsilon(const std::vector<int>& omega, UpsilonStats* stats);
  // Builds the supervised clustering-oriented graph Υ(A, Q', 𝒱).
  CsrMatrix SupervisedOrientedGraph();
  // Fills diagnostics into `record`.
  void TrackEpoch(EpochRecord* record, const std::vector<int>& omega);

  // Snapshot period of the resilience layer (checkpoint_every, or m2).
  int CheckpointEvery() const;
  // Captures model + phase state into `*ckpt`.
  void CaptureTrainerState(int epoch, bool pretrain,
                           const std::vector<int>& omega,
                           TrainerCheckpoint* ckpt);
  // Handles a bad guard verdict: rolls back to `*ckpt` with a backed-off
  // learning rate and returns true, or — once the rollback budget is
  // exhausted — restores the last good state, marks the run failed, and
  // returns false. `omega` may be null during pretraining.
  bool RecoverOrFail(const HealthVerdict& verdict, bool pretrain, int epoch,
                     const TrainerCheckpoint& ckpt, NumericalGuard* guard,
                     std::vector<int>* omega);

  GaeModel* model_;
  TrainerOptions options_;
  int k_;
  Rng rng_;
  AttributedGraph self_graph_;  // Current A^self_clus.
  double initial_lr_;  // Rollback-retry LR anchor (rate at construction).
  CsrMatrix self_adj_;
  ReconTarget recon_;
  std::vector<int> all_nodes_;

  // True once the deadline / global-stop check tripped at an epoch
  // boundary; returns true so the caller can log the budget event once.
  bool DeadlineExpired(bool pretrain, int epoch);

  // Resilience outcome, accumulated across phases.
  bool failed_ = false;
  bool timed_out_ = false;
  std::string failure_reason_;
  int rollbacks_ = 0;
  std::vector<HealthEvent> health_log_;
  std::vector<HealthStatus> pretrain_health_;
};

}  // namespace rgae

#endif  // RGAE_CORE_RGAE_TRAINER_H_
