#ifndef RGAE_CORE_CHECKPOINT_H_
#define RGAE_CORE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/matrix.h"

namespace rgae {

class GaeModel;

/// Full optimization state of one model: parameter values, Adam first/second
/// moments and step counter, the learning rate, and any model-specific
/// derived state (DEC target distributions etc., see
/// `GaeModel::SaveAuxState`). Restoring a `ModelCheckpoint` resumes training
/// exactly where the capture left off — unlike `GaeModel::LoadWeights`,
/// which resets the optimizer.
struct ModelCheckpoint {
  std::vector<Matrix> values;
  std::vector<Matrix> adam_m;
  std::vector<Matrix> adam_v;
  std::vector<Matrix> aux;
  long adam_step = 0;
  double learning_rate = 0.0;

  bool empty() const { return values.empty(); }
};

/// Captures the model's parameters, optimizer state and aux state.
ModelCheckpoint CaptureModel(GaeModel* model);

/// Restores a capture into `model`. Returns false (and fills `*error` when
/// non-null) if the checkpoint's shape does not match the model — e.g. a
/// checkpoint taken before the clustering head existed.
bool RestoreModel(const ModelCheckpoint& checkpoint, GaeModel* model,
                  std::string* error = nullptr);

/// Model state plus the trainer's phase state: the current self-supervision
/// graph A^self_clus, the reliable set Ω, and the epoch within the phase.
/// This is everything `RGaeTrainer` needs to roll a run back (DESIGN.md §5).
struct TrainerCheckpoint {
  ModelCheckpoint model;
  AttributedGraph self_graph;
  std::vector<int> omega;
  int epoch = 0;
  /// True when the checkpoint was taken during the pretraining phase.
  bool pretrain = false;

  bool empty() const { return model.empty(); }
};

/// Binary on-disk round trip. The format stores raw doubles, so restored
/// parameters and Adam moments are byte-identical to the captured ones.
/// `SaveCheckpoint` publishes the file atomically (tmp + fsync + rename,
/// see util/fileio.h): a crash — even `kill -9` — mid-save leaves the
/// previous checkpoint intact, never a torn file. Returns false (with
/// `*error` filled when non-null) on I/O or format errors; `*checkpoint`
/// is unspecified after a failed load.
bool SaveCheckpoint(const TrainerCheckpoint& checkpoint,
                    const std::string& path, std::string* error = nullptr);
bool LoadCheckpoint(const std::string& path, TrainerCheckpoint* checkpoint,
                    std::string* error = nullptr);

}  // namespace rgae

#endif  // RGAE_CORE_CHECKPOINT_H_
