#ifndef RGAE_CORE_HEALTH_H_
#define RGAE_CORE_HEALTH_H_

#include <deque>
#include <string>
#include <vector>

#include "src/tensor/matrix.h"

namespace rgae {

class GaeModel;

/// Typed outcome of a numerical-health check. Anything other than `kOk`
/// means the training state is unusable or about to become so, and the
/// trainer should roll back to its last good checkpoint (see
/// `ResilienceOptions` in rgae_trainer.h and DESIGN.md §5).
enum class HealthStatus {
  kOk = 0,
  /// A loss, parameter, or embedding entry is NaN / ±inf.
  kNonFinite,
  /// The loss left the rolling window's trust region (divergence).
  kDiverging,
  /// A cluster column of the soft-assignment matrix lost (almost) all of
  /// its probability mass — the head collapsed onto fewer than K clusters.
  kDegenerateClusters,
};

/// Short stable name for logs and bench output ("ok", "non-finite", ...).
const char* HealthStatusName(HealthStatus status);

/// Verdict of one guard check: a status plus a human-readable detail
/// naming the offending quantity (empty when ok).
struct HealthVerdict {
  HealthStatus status = HealthStatus::kOk;
  std::string detail;

  bool ok() const { return status == HealthStatus::kOk; }
};

/// One entry of a training run's health log: what the guard saw at which
/// epoch and what the trainer did about it.
struct HealthEvent {
  int epoch = 0;
  bool pretrain = false;
  HealthStatus status = HealthStatus::kOk;
  /// Recovery action taken ("rollback to epoch 10, lr 0.005", "failed: ...");
  /// empty for plain ok observations.
  std::string action;
};

struct NumericalGuardOptions {
  /// Number of recent losses kept for the divergence check. The check only
  /// arms once the window is full, so early noisy epochs never trip it.
  int loss_window = 12;
  /// A loss is "diverging" once it exceeds
  /// `window_min + divergence_slack + divergence_factor * |window_min|`.
  double divergence_factor = 4.0;
  /// Absolute slack so near-zero losses tolerate ordinary wobble.
  double divergence_slack = 1.0;
  /// Scan all parameter values for non-finite entries each check. O(#weights)
  /// but branch-free and cheap next to a training step.
  bool check_parameters = true;
  /// Minimum soft-assignment mass per cluster, as a fraction of N, before a
  /// cluster counts as collapsed.
  double min_cluster_mass = 1e-4;
};

/// True when every entry is finite (no NaN / ±inf).
bool AllFinite(const Matrix& m);
bool AllFinite(const std::vector<double>& v);

/// Per-run numerical-health monitor.
///
/// The trainer calls `CheckStep` after every optimization step and
/// `CheckSoftAssignments` whenever a soft-assignment matrix is available.
/// The guard is stateful only through the rolling loss window; after a
/// rollback the trainer calls `Reset` so pre-rollback losses do not poison
/// the divergence baseline.
class NumericalGuard {
 public:
  explicit NumericalGuard(const NumericalGuardOptions& options = {});

  /// Checks the step loss and (optionally) all model parameters. Records
  /// `loss` into the rolling window only when the verdict is ok.
  HealthVerdict CheckStep(double loss, GaeModel* model);

  /// Checks an N x K soft-assignment matrix for non-finite entries and
  /// collapsed cluster columns. Stateless.
  HealthVerdict CheckSoftAssignments(const Matrix& p) const;

  /// Clears the rolling loss window (called after a rollback).
  void Reset();

  const NumericalGuardOptions& options() const { return options_; }

 private:
  NumericalGuardOptions options_;
  std::deque<double> window_;
};

}  // namespace rgae

#endif  // RGAE_CORE_HEALTH_H_
