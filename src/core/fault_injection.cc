#include "src/core/fault_injection.h"

#include <chrono>
#include <limits>
#include <thread>

#include "src/models/model.h"

namespace rgae {

const char* FaultTypeName(FaultEvent::Type type) {
  switch (type) {
    case FaultEvent::Type::kNanWeight:
      return "nan-weight";
    case FaultEvent::Type::kLrSpike:
      return "lr-spike";
    case FaultEvent::Type::kCorruptGradient:
      return "corrupt-gradient";
    case FaultEvent::Type::kSlowEpoch:
      return "slow-epoch";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::vector<FaultEvent> events, uint64_t seed)
    : rng_(seed) {
  events_.reserve(events.size());
  for (FaultEvent& e : events) events_.push_back({e, false});
}

int FaultInjector::Apply(bool pretrain, int epoch, GaeModel* model) {
  int fired = 0;
  for (Scheduled& s : events_) {
    if (s.consumed || s.event.pretrain != pretrain || s.event.epoch != epoch) {
      continue;
    }
    const std::vector<Parameter*> params = model->Params();
    if (params.empty()) continue;
    std::string line = std::string(pretrain ? "pretrain" : "cluster") +
                       " epoch " + std::to_string(epoch) + ": " +
                       FaultTypeName(s.event.type);
    switch (s.event.type) {
      case FaultEvent::Type::kNanWeight: {
        Parameter* p = params[rng_.UniformInt(static_cast<int>(params.size()))];
        const int idx = rng_.UniformInt(static_cast<int>(p->value.size()));
        p->value.data()[idx] = std::numeric_limits<double>::quiet_NaN();
        line += " in " + p->value.ShapeString();
        break;
      }
      case FaultEvent::Type::kLrSpike: {
        Adam* adam = model->optimizer();
        if (adam == nullptr) continue;
        adam->set_learning_rate(adam->learning_rate() * s.event.magnitude);
        line += " x" + std::to_string(s.event.magnitude);
        break;
      }
      case FaultEvent::Type::kCorruptGradient: {
        Parameter* p = params[rng_.UniformInt(static_cast<int>(params.size()))];
        double* v = p->value.data();
        for (size_t i = 0; i < p->value.size(); ++i) {
          v[i] += s.event.magnitude * rng_.Gaussian();
        }
        line += " in " + p->value.ShapeString();
        break;
      }
      case FaultEvent::Type::kSlowEpoch: {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            s.event.magnitude));
        line += " " + std::to_string(s.event.magnitude) + "ms";
        break;
      }
    }
    if (s.event.once) s.consumed = true;
    ++faults_fired_;
    ++fired;
    log_.push_back(std::move(line));
  }
  return fired;
}

}  // namespace rgae
