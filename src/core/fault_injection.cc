#include "src/core/fault_injection.h"

#include <chrono>
#include <limits>
#include <thread>

#include "src/models/model.h"

namespace rgae {

const char* FaultTypeName(FaultEvent::Type type) {
  switch (type) {
    case FaultEvent::Type::kNanWeight:
      return "nan-weight";
    case FaultEvent::Type::kLrSpike:
      return "lr-spike";
    case FaultEvent::Type::kCorruptGradient:
      return "corrupt-gradient";
    case FaultEvent::Type::kSlowEpoch:
      return "slow-epoch";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::vector<FaultEvent> events, uint64_t seed)
    : rng_(seed) {
  events_.reserve(events.size());
  for (FaultEvent& e : events) events_.push_back({e, false});
}

int FaultInjector::Apply(bool pretrain, int epoch, GaeModel* model) {
  int fired = 0;
  for (Scheduled& s : events_) {
    if (s.consumed || s.event.pretrain != pretrain || s.event.epoch != epoch) {
      continue;
    }
    const std::vector<Parameter*> params = model->Params();
    if (params.empty()) continue;
    std::string line = std::string(pretrain ? "pretrain" : "cluster") +
                       " epoch " + std::to_string(epoch) + ": " +
                       FaultTypeName(s.event.type);
    switch (s.event.type) {
      case FaultEvent::Type::kNanWeight: {
        Parameter* p = params[rng_.UniformInt(static_cast<int>(params.size()))];
        const int idx = rng_.UniformInt(static_cast<int>(p->value.size()));
        p->value.data()[idx] = std::numeric_limits<double>::quiet_NaN();
        line += " in " + p->value.ShapeString();
        break;
      }
      case FaultEvent::Type::kLrSpike: {
        Adam* adam = model->optimizer();
        if (adam == nullptr) continue;
        adam->set_learning_rate(adam->learning_rate() * s.event.magnitude);
        line += " x" + std::to_string(s.event.magnitude);
        break;
      }
      case FaultEvent::Type::kCorruptGradient: {
        Parameter* p = params[rng_.UniformInt(static_cast<int>(params.size()))];
        double* v = p->value.data();
        for (size_t i = 0; i < p->value.size(); ++i) {
          v[i] += s.event.magnitude * rng_.Gaussian();
        }
        line += " in " + p->value.ShapeString();
        break;
      }
      case FaultEvent::Type::kSlowEpoch: {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            s.event.magnitude));
        line += " " + std::to_string(s.event.magnitude) + "ms";
        break;
      }
    }
    if (s.event.once) s.consumed = true;
    ++faults_fired_;
    ++fired;
    log_.push_back(std::move(line));
  }
  return fired;
}

const char* ServeFaultTypeName(ServeFault::Type type) {
  switch (type) {
    case ServeFault::Type::kWorkerStall:
      return "worker-stall";
    case ServeFault::Type::kQueueBurst:
      return "queue-burst";
    case ServeFault::Type::kSnapshotCorruptOnSwap:
      return "snapshot-corrupt-on-swap";
    case ServeFault::Type::kTornWrite:
      return "torn-write";
    case ServeFault::Type::kConnReset:
      return "conn-reset";
    case ServeFault::Type::kAcceptStall:
      return "accept-stall";
    case ServeFault::Type::kByteStall:
      return "byte-stall";
  }
  return "unknown";
}

ServeFaultInjector::ServeFaultInjector(std::vector<ServeFault> faults) {
  faults_.reserve(faults.size());
  for (ServeFault& f : faults) faults_.push_back({f, false});
}

int ServeFaultInjector::Fire(ServeFault::Type type, int64_t ordinal,
                             const char* trigger, double* magnitude) {
  int fired = 0;
  for (Armed& armed : faults_) {
    const ServeFault& f = armed.fault;
    if (armed.consumed || f.type != type || f.every_n <= 0) continue;
    const int64_t since_warmup = ordinal - f.after;
    if (since_warmup <= 0 || since_warmup % f.every_n != 0) continue;
    *magnitude += f.magnitude;
    ++fired;
    if (f.once) armed.consumed = true;
    log_.push_back(std::string(ServeFaultTypeName(type)) + " at " + trigger +
                   " " + std::to_string(ordinal));
  }
  return fired;
}

double ServeFaultInjector::OnBatch() {
  MutexLock lock(mu_);
  double stall_ms = 0.0;
  if (Fire(ServeFault::Type::kWorkerStall, ++batches_, "batch", &stall_ms) >
      0) {
    ++counts_.stalls;
  }
  return stall_ms;
}

int ServeFaultInjector::OnOffer() {
  MutexLock lock(mu_);
  double extra = 0.0;
  Fire(ServeFault::Type::kQueueBurst, ++offers_, "offer", &extra);
  counts_.burst_requests += static_cast<int64_t>(extra);
  return static_cast<int>(extra);
}

bool ServeFaultInjector::OnSwap() {
  MutexLock lock(mu_);
  double unused = 0.0;
  const bool corrupt =
      Fire(ServeFault::Type::kSnapshotCorruptOnSwap, ++swaps_, "swap",
           &unused) > 0;
  if (corrupt) ++counts_.corrupted_swaps;
  return corrupt;
}

double ServeFaultInjector::OnAccept() {
  MutexLock lock(mu_);
  ++accepts_;
  double stall_ms = 0.0;
  if (Fire(ServeFault::Type::kAcceptStall, accepts_, "accept", &stall_ms) >
      0) {
    ++counts_.accept_stalls;
  }
  return stall_ms;
}

NetWriteFault ServeFaultInjector::OnNetWrite() {
  MutexLock lock(mu_);
  ++net_writes_;
  NetWriteFault fault;
  double unused = 0.0;
  if (Fire(ServeFault::Type::kConnReset, net_writes_, "net-write", &unused) >
      0) {
    fault.reset = true;
    ++counts_.conn_resets;
    return fault;  // A reset preempts the write; nothing else can fire.
  }
  if (Fire(ServeFault::Type::kTornWrite, net_writes_, "net-write", &unused) >
      0) {
    fault.torn = true;
    ++counts_.torn_writes;
  }
  if (Fire(ServeFault::Type::kByteStall, net_writes_, "net-write",
           &fault.stall_ms) > 0) {
    ++counts_.byte_stalls;
  }
  return fault;
}

ServeFaultCounts ServeFaultInjector::counts() const {
  MutexLock lock(mu_);
  return counts_;
}

std::vector<std::string> ServeFaultInjector::log() const {
  MutexLock lock(mu_);
  return log_;
}

}  // namespace rgae
