#include "src/core/deadline.h"

#include <atomic>

namespace rgae {

namespace {
std::atomic<bool> g_stop_requested{false};
}  // namespace

void RequestGlobalStop() {
  g_stop_requested.store(true, std::memory_order_relaxed);
}

bool GlobalStopRequested() {
  return g_stop_requested.load(std::memory_order_relaxed);
}

void ClearGlobalStop() {
  g_stop_requested.store(false, std::memory_order_relaxed);
}

}  // namespace rgae
