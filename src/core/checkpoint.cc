#include "src/core/checkpoint.h"

#include <cstdint>
#include <fstream>

#include "src/models/model.h"
#include "src/obs/trace.h"
#include "src/util/fileio.h"

namespace rgae {

namespace {

constexpr uint64_t kMagic = 0x52474145434B5031ULL;  // "RGAECKP1".

// The writer serializes into a memory buffer so the on-disk file can be
// published atomically (tmp + fsync + rename, util/fileio.h): a crash mid
// save leaves the previous checkpoint intact instead of a torn file that
// LoadCheckpoint would reject after restart — exactly when it is needed.
void WriteU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteI64(std::string& out, int64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteDouble(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::ifstream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool ReadI64(std::ifstream& in, int64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool ReadDouble(std::ifstream& in, double* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

void WriteMatrix(std::string& out, const Matrix& m) {
  WriteI64(out, m.rows());
  WriteI64(out, m.cols());
  out.append(reinterpret_cast<const char*>(m.data()),
             m.size() * sizeof(double));
}

bool ReadMatrix(std::ifstream& in, Matrix* m) {
  int64_t rows = 0, cols = 0;
  if (!ReadI64(in, &rows) || !ReadI64(in, &cols)) return false;
  if (rows < 0 || cols < 0 || rows > (int64_t{1} << 31) ||
      cols > (int64_t{1} << 31)) {
    return false;
  }
  *m = Matrix(static_cast<int>(rows), static_cast<int>(cols));
  in.read(reinterpret_cast<char*>(m->data()),
          static_cast<std::streamsize>(m->size() * sizeof(double)));
  return static_cast<bool>(in);
}

void WriteMatrixList(std::string& out, const std::vector<Matrix>& list) {
  WriteU64(out, list.size());
  for (const Matrix& m : list) WriteMatrix(out, m);
}

bool ReadMatrixList(std::ifstream& in, std::vector<Matrix>* list) {
  uint64_t count = 0;
  if (!ReadU64(in, &count) || count > (1u << 20)) return false;
  list->resize(count);
  for (Matrix& m : *list) {
    if (!ReadMatrix(in, &m)) return false;
  }
  return true;
}

void WriteIntVector(std::string& out, const std::vector<int>& v) {
  WriteU64(out, v.size());
  for (int x : v) WriteI64(out, x);
}

bool ReadIntVector(std::ifstream& in, std::vector<int>* v) {
  uint64_t count = 0;
  if (!ReadU64(in, &count) || count > (1u << 28)) return false;
  v->resize(count);
  for (int& x : *v) {
    int64_t raw = 0;
    if (!ReadI64(in, &raw)) return false;
    x = static_cast<int>(raw);
  }
  return true;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

ModelCheckpoint CaptureModel(GaeModel* model) {
  RGAE_TIMED_KERNEL("ckpt.capture");
  RGAE_COUNT("ckpt.captures");
  ModelCheckpoint ckpt;
  for (Parameter* p : model->Params()) {
    ckpt.values.push_back(p->value);
    ckpt.adam_m.push_back(p->adam_m);
    ckpt.adam_v.push_back(p->adam_v);
  }
  ckpt.aux = model->SaveAuxState();
  if (model->optimizer() != nullptr) {
    ckpt.adam_step = model->optimizer()->step();
    ckpt.learning_rate = model->optimizer()->learning_rate();
  }
  return ckpt;
}

bool RestoreModel(const ModelCheckpoint& checkpoint, GaeModel* model,
                  std::string* error) {
  RGAE_TIMED_KERNEL("ckpt.restore");
  RGAE_COUNT("ckpt.restores");
  const std::vector<Parameter*> params = model->Params();
  if (checkpoint.values.size() != params.size()) {
    return Fail(error, "checkpoint has " +
                           std::to_string(checkpoint.values.size()) +
                           " parameters, model has " +
                           std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (checkpoint.values[i].rows() != params[i]->value.rows() ||
        checkpoint.values[i].cols() != params[i]->value.cols()) {
      return Fail(error, "parameter " + std::to_string(i) + " shape " +
                             checkpoint.values[i].ShapeString() +
                             " does not match model " +
                             params[i]->value.ShapeString());
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = checkpoint.values[i];
    params[i]->adam_m = checkpoint.adam_m[i];
    params[i]->adam_v = checkpoint.adam_v[i];
    params[i]->ZeroGrad();
  }
  if (!model->RestoreAuxState(checkpoint.aux)) {
    return Fail(error, "model rejected the checkpoint's aux state");
  }
  if (model->optimizer() != nullptr) {
    model->optimizer()->set_step(checkpoint.adam_step);
    model->optimizer()->set_learning_rate(checkpoint.learning_rate);
  }
  return true;
}

bool SaveCheckpoint(const TrainerCheckpoint& checkpoint,
                    const std::string& path, std::string* error) {
  std::string out;
  WriteU64(out, kMagic);
  WriteMatrixList(out, checkpoint.model.values);
  WriteMatrixList(out, checkpoint.model.adam_m);
  WriteMatrixList(out, checkpoint.model.adam_v);
  WriteMatrixList(out, checkpoint.model.aux);
  WriteI64(out, checkpoint.model.adam_step);
  WriteDouble(out, checkpoint.model.learning_rate);

  const AttributedGraph& g = checkpoint.self_graph;
  WriteI64(out, g.num_nodes());
  WriteU64(out, g.edges().size());
  for (const auto& [u, v] : g.edges()) {
    WriteI64(out, u);
    WriteI64(out, v);
  }
  WriteMatrix(out, g.features());
  WriteIntVector(out, g.labels());

  WriteIntVector(out, checkpoint.omega);
  WriteI64(out, checkpoint.epoch);
  WriteI64(out, checkpoint.pretrain ? 1 : 0);
  return WriteFileAtomic(path, out, error);
}

bool LoadCheckpoint(const std::string& path, TrainerCheckpoint* checkpoint,
                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "cannot open " + path);
  uint64_t magic = 0;
  if (!ReadU64(in, &magic) || magic != kMagic) {
    return Fail(error, path + " is not an rgae checkpoint");
  }
  if (!ReadMatrixList(in, &checkpoint->model.values) ||
      !ReadMatrixList(in, &checkpoint->model.adam_m) ||
      !ReadMatrixList(in, &checkpoint->model.adam_v) ||
      !ReadMatrixList(in, &checkpoint->model.aux)) {
    return Fail(error, "truncated model state in " + path);
  }
  int64_t step = 0;
  if (!ReadI64(in, &step) ||
      !ReadDouble(in, &checkpoint->model.learning_rate)) {
    return Fail(error, "truncated optimizer state in " + path);
  }
  checkpoint->model.adam_step = static_cast<long>(step);

  int64_t num_nodes = 0;
  uint64_t num_edges = 0;
  if (!ReadI64(in, &num_nodes) || num_nodes < 0 || !ReadU64(in, &num_edges) ||
      num_edges > (1u << 28)) {
    return Fail(error, "bad graph header in " + path);
  }
  AttributedGraph g(static_cast<int>(num_nodes));
  for (uint64_t i = 0; i < num_edges; ++i) {
    int64_t u = 0, v = 0;
    if (!ReadI64(in, &u) || !ReadI64(in, &v)) {
      return Fail(error, "truncated edge list in " + path);
    }
    if (u < 0 || u >= num_nodes || v < 0 || v >= num_nodes) {
      return Fail(error, "edge endpoint out of range in " + path);
    }
    g.AddEdge(static_cast<int>(u), static_cast<int>(v));
  }
  Matrix features;
  if (!ReadMatrix(in, &features)) {
    return Fail(error, "truncated features in " + path);
  }
  if (!features.empty()) g.set_features(std::move(features));
  std::vector<int> labels;
  if (!ReadIntVector(in, &labels)) {
    return Fail(error, "truncated labels in " + path);
  }
  if (!labels.empty()) g.set_labels(std::move(labels));
  checkpoint->self_graph = std::move(g);

  int64_t epoch = 0, pretrain = 0;
  if (!ReadIntVector(in, &checkpoint->omega) || !ReadI64(in, &epoch) ||
      !ReadI64(in, &pretrain)) {
    return Fail(error, "truncated trainer state in " + path);
  }
  checkpoint->epoch = static_cast<int>(epoch);
  checkpoint->pretrain = pretrain != 0;
  return true;
}

}  // namespace rgae
