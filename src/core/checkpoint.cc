#include "src/core/checkpoint.h"

#include <cstdint>

#include "src/models/model.h"
#include "src/obs/trace.h"
#include "src/util/binio.h"
#include "src/util/fileio.h"

namespace rgae {

namespace {

constexpr uint64_t kMagic = 0x52474145434B5031ULL;  // "RGAECKP1".

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

ModelCheckpoint CaptureModel(GaeModel* model) {
  RGAE_TIMED_KERNEL("ckpt.capture");
  RGAE_COUNT("ckpt.captures");
  ModelCheckpoint ckpt;
  for (Parameter* p : model->Params()) {
    ckpt.values.push_back(p->value);
    ckpt.adam_m.push_back(p->adam_m);
    ckpt.adam_v.push_back(p->adam_v);
  }
  ckpt.aux = model->SaveAuxState();
  if (model->optimizer() != nullptr) {
    ckpt.adam_step = model->optimizer()->step();
    ckpt.learning_rate = model->optimizer()->learning_rate();
  }
  return ckpt;
}

bool RestoreModel(const ModelCheckpoint& checkpoint, GaeModel* model,
                  std::string* error) {
  RGAE_TIMED_KERNEL("ckpt.restore");
  RGAE_COUNT("ckpt.restores");
  const std::vector<Parameter*> params = model->Params();
  if (checkpoint.values.size() != params.size()) {
    return Fail(error, "checkpoint has " +
                           std::to_string(checkpoint.values.size()) +
                           " parameters, model has " +
                           std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (checkpoint.values[i].rows() != params[i]->value.rows() ||
        checkpoint.values[i].cols() != params[i]->value.cols()) {
      return Fail(error, "parameter " + std::to_string(i) + " shape " +
                             checkpoint.values[i].ShapeString() +
                             " does not match model " +
                             params[i]->value.ShapeString());
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = checkpoint.values[i];
    params[i]->adam_m = checkpoint.adam_m[i];
    params[i]->adam_v = checkpoint.adam_v[i];
    params[i]->ZeroGrad();
  }
  if (!model->RestoreAuxState(checkpoint.aux)) {
    return Fail(error, "model rejected the checkpoint's aux state");
  }
  if (model->optimizer() != nullptr) {
    model->optimizer()->set_step(checkpoint.adam_step);
    model->optimizer()->set_learning_rate(checkpoint.learning_rate);
  }
  return true;
}

bool SaveCheckpoint(const TrainerCheckpoint& checkpoint,
                    const std::string& path, std::string* error) {
  // Serialized into memory first so the file publishes atomically
  // (util/fileio.h): a crash mid-save leaves the previous checkpoint
  // intact, never a torn file. Field encodings come from util/binio.h and
  // are shared with the inference snapshot format.
  std::string out;
  BinaryWriter w(&out);
  w.U64(kMagic);
  w.MatList(checkpoint.model.values);
  w.MatList(checkpoint.model.adam_m);
  w.MatList(checkpoint.model.adam_v);
  w.MatList(checkpoint.model.aux);
  w.I64(checkpoint.model.adam_step);
  w.F64(checkpoint.model.learning_rate);

  const AttributedGraph& g = checkpoint.self_graph;
  w.I64(g.num_nodes());
  w.U64(g.edges().size());
  for (const auto& [u, v] : g.edges()) {
    w.I64(u);
    w.I64(v);
  }
  w.Mat(g.features());
  w.IntVec(g.labels());

  w.IntVec(checkpoint.omega);
  w.I64(checkpoint.epoch);
  w.I64(checkpoint.pretrain ? 1 : 0);
  return WriteFileAtomic(path, out, error);
}

bool LoadCheckpoint(const std::string& path, TrainerCheckpoint* checkpoint,
                    std::string* error) {
  std::string contents;
  if (!ReadFileToString(path, &contents, nullptr)) {
    return Fail(error, "cannot open " + path);
  }
  BinaryReader r(contents);
  uint64_t magic = 0;
  if (!r.U64(&magic) || magic != kMagic) {
    return Fail(error, path + " is not an rgae checkpoint");
  }
  if (!r.MatList(&checkpoint->model.values) ||
      !r.MatList(&checkpoint->model.adam_m) ||
      !r.MatList(&checkpoint->model.adam_v) ||
      !r.MatList(&checkpoint->model.aux)) {
    return Fail(error, "truncated model state in " + path);
  }
  int64_t step = 0;
  if (!r.I64(&step) || !r.F64(&checkpoint->model.learning_rate)) {
    return Fail(error, "truncated optimizer state in " + path);
  }
  checkpoint->model.adam_step = static_cast<long>(step);

  int64_t num_nodes = 0;
  uint64_t num_edges = 0;
  if (!r.I64(&num_nodes) || num_nodes < 0 || !r.U64(&num_edges) ||
      num_edges > (1u << 28)) {
    return Fail(error, "bad graph header in " + path);
  }
  AttributedGraph g(static_cast<int>(num_nodes));
  for (uint64_t i = 0; i < num_edges; ++i) {
    int64_t u = 0, v = 0;
    if (!r.I64(&u) || !r.I64(&v)) {
      return Fail(error, "truncated edge list in " + path);
    }
    if (u < 0 || u >= num_nodes || v < 0 || v >= num_nodes) {
      return Fail(error, "edge endpoint out of range in " + path);
    }
    g.AddEdge(static_cast<int>(u), static_cast<int>(v));
  }
  Matrix features;
  if (!r.Mat(&features)) {
    return Fail(error, "truncated features in " + path);
  }
  if (!features.empty()) g.set_features(std::move(features));
  std::vector<int> labels;
  if (!r.IntVec(&labels)) {
    return Fail(error, "truncated labels in " + path);
  }
  if (!labels.empty()) g.set_labels(std::move(labels));
  checkpoint->self_graph = std::move(g);

  int64_t epoch = 0, pretrain = 0;
  if (!r.IntVec(&checkpoint->omega) || !r.I64(&epoch) || !r.I64(&pretrain)) {
    return Fail(error, "truncated trainer state in " + path);
  }
  checkpoint->epoch = static_cast<int>(epoch);
  checkpoint->pretrain = pretrain != 0;
  return true;
}

}  // namespace rgae
