#ifndef RGAE_CORE_DEADLINE_H_
#define RGAE_CORE_DEADLINE_H_

#include <chrono>
#include <limits>

namespace rgae {

/// Wall-clock budget for one trial, threaded from the eval harness into
/// `RGaeTrainer` (see `TrainerOptions::deadline`). The trainer checks it at
/// epoch boundaries only — an expired deadline terminates the phase at the
/// next boundary and the trial returns a partial `TrainResult` marked
/// `timed_out`, so one stuck configuration cannot hang a whole table bench.
/// Default-constructed deadlines are unlimited and cost one comparison per
/// check.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited: never expires.
  Deadline() = default;

  /// A deadline `seconds` from now; non-positive values mean unlimited
  /// (the natural encoding of "0 = off" configuration knobs).
  static Deadline After(double seconds) {
    Deadline d;
    if (seconds > 0.0) {
      d.unlimited_ = false;
      d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
    }
    return d;
  }

  static Deadline Unlimited() { return Deadline(); }

  bool unlimited() const { return unlimited_; }
  bool expired() const { return !unlimited_ && Clock::now() >= at_; }

  /// Seconds until expiry; +inf when unlimited, clamped at 0 once expired.
  double remaining_seconds() const {
    if (unlimited_) return std::numeric_limits<double>::infinity();
    const double s = std::chrono::duration<double>(at_ - Clock::now()).count();
    return s > 0.0 ? s : 0.0;
  }

 private:
  bool unlimited_ = true;
  Clock::time_point at_{};
};

/// Process-wide cooperative stop flag, set from the bench binaries'
/// SIGINT/SIGTERM handlers (async-signal-safe: a relaxed atomic store).
/// The trainer polls it at epoch boundaries alongside the deadline, and the
/// multi-trial loops poll it between trials, so an interrupted bench run
/// stops at the next consistent point, journals nothing partial, and still
/// flushes its journal/metrics/trace sinks on the way out.
void RequestGlobalStop();
bool GlobalStopRequested();
/// Re-arms the flag (tests; a new run after a handled interruption).
void ClearGlobalStop();

}  // namespace rgae

#endif  // RGAE_CORE_DEADLINE_H_
