#ifndef RGAE_CORE_FAULT_INJECTION_H_
#define RGAE_CORE_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/random.h"
#include "src/util/sync.h"

namespace rgae {

class GaeModel;

/// One scheduled fault. Faults fire just before the training step of the
/// matching (phase, epoch); which weight entries they hit is drawn from the
/// injector's seeded RNG, so runs reproduce bit-identically.
struct FaultEvent {
  enum class Type {
    /// Overwrite one randomly chosen weight entry with NaN.
    kNanWeight,
    /// Multiply the optimizer's learning rate by `magnitude` (the spike
    /// persists until a rollback restores the checkpointed rate).
    kLrSpike,
    /// Add `magnitude`-scaled random noise to one parameter block, the
    /// footprint of a corrupted gradient having been applied.
    kCorruptGradient,
    /// Stall the epoch for `magnitude` milliseconds of wall time, the
    /// footprint of a hung data source or an overloaded machine. Drives
    /// the trainer's per-trial `Deadline` deterministically in tests:
    /// a persistent slow-epoch fault times out every full-length attempt
    /// while a reduced-epoch "degraded" retry never reaches the stalled
    /// epoch and completes in budget.
    kSlowEpoch,
  };

  Type type = Type::kNanWeight;
  /// Epoch within the phase at which the fault fires.
  int epoch = 0;
  /// Fire during pretraining (true) or the clustering phase (false).
  bool pretrain = false;
  /// Strength of the fault (LR multiplier / noise scale).
  double magnitude = 1e3;
  /// One-shot faults are consumed by their first firing, so a rolled-back
  /// run passes the epoch cleanly on retry. Persistent faults (`once ==
  /// false`) re-fire on every pass and make the run unrecoverable.
  bool once = true;
};

/// Human-readable name of a fault type ("nan-weight", ...).
const char* FaultTypeName(FaultEvent::Type type);

/// Deterministic, seed-driven fault injector used by the resilience tests
/// and `bench_robust_training` to prove each recovery path fires. Attach
/// one via `TrainerOptions::fault_injector`; the trainer calls `Apply`
/// before every training step.
class FaultInjector {
 public:
  FaultInjector(std::vector<FaultEvent> events, uint64_t seed);

  /// Applies every event scheduled for (phase, epoch) to the model.
  /// Returns the number of faults that fired.
  int Apply(bool pretrain, int epoch, GaeModel* model);

  /// Total number of faults fired so far (across rollback replays).
  int faults_fired() const { return faults_fired_; }

  /// Log lines describing each fired fault, for bench output.
  const std::vector<std::string>& log() const { return log_; }

 private:
  struct Scheduled {
    FaultEvent event;
    bool consumed = false;
  };

  std::vector<Scheduled> events_;
  Rng rng_;
  int faults_fired_ = 0;
  std::vector<std::string> log_;
};

/// One serve-side fault. Where training faults fire on (phase, epoch),
/// serve faults fire on deterministic *trigger ordinals*: the injector
/// counts worker batches, offered requests, and swap attempts, and a fault
/// fires when its counter schedule matches — so a chaos run reproduces the
/// same fault sequence for the same workload, with no wall clock or RNG in
/// the firing decision.
struct ServeFault {
  enum class Type {
    /// Stall the worker for `magnitude` milliseconds before it processes a
    /// batch — the footprint of a slow disk, a page fault storm, or a noisy
    /// neighbor. Drives queue growth, and with it admission rejections,
    /// degraded serving, and deadline shedding.
    kWorkerStall,
    /// Amplify one offered request into `magnitude` extra synthetic offers
    /// of the same node — the footprint of a retry storm or a thundering
    /// herd. The extras run the full admission path and are counted in the
    /// engine's offered/shed/degraded totals.
    kQueueBurst,
    /// Corrupt the next snapshot handed to `ServeRegistry::Swap` (a NaN
    /// overwrites one weight) so validation must reject the swap and the
    /// serving engine must keep answering from the old snapshot.
    kSnapshotCorruptOnSwap,
    /// Truncate one response write after a prefix and close the connection
    /// — the footprint of a peer crashing mid-write or a NAT dropping the
    /// flow. The client must detect the short frame and recover by
    /// reconnecting (idempotent queries retry).
    kTornWrite,
    /// Close the connection instead of writing the response — the footprint
    /// of an RST from a dying peer or a middlebox.
    kConnReset,
    /// Stall the acceptor for `magnitude` milliseconds before handing a
    /// connection to the worker pool — the footprint of a SYN-flooded or
    /// CPU-starved edge. Drives accept-queue growth and connect timeouts.
    kAcceptStall,
    /// Stall `magnitude` milliseconds mid-write, between the two halves of
    /// a response frame — the footprint of a congested uplink trickling
    /// bytes. Exercises the client's read deadline on a half-delivered
    /// frame.
    kByteStall,
  };

  Type type = Type::kWorkerStall;
  /// Fire on every `every_n`-th trigger of the matching kind (1 = every
  /// trigger); non-positive disables the event.
  int every_n = 1;
  /// Skip the first `after` triggers before the schedule starts counting
  /// (warm-up room for tests that need a healthy phase first).
  int after = 0;
  /// Stall milliseconds (kWorkerStall) or extra requests (kQueueBurst).
  double magnitude = 0.0;
  /// One-shot faults are consumed by their first firing.
  bool once = false;
};

/// Human-readable name of a serve fault type ("worker-stall", ...).
const char* ServeFaultTypeName(ServeFault::Type type);

/// Totals of serve faults fired, exported into the loadtest JSON block.
struct ServeFaultCounts {
  int64_t stalls = 0;
  int64_t burst_requests = 0;
  int64_t corrupted_swaps = 0;
  int64_t torn_writes = 0;
  int64_t conn_resets = 0;
  int64_t accept_stalls = 0;
  int64_t byte_stalls = 0;
};

/// Socket-fault decision for one response-frame write (`OnNetWrite`).
/// Fields compose: a stall fires before a torn write would truncate.
struct NetWriteFault {
  /// Write only a prefix of the frame, then close the connection.
  bool torn = false;
  /// Close the connection without writing anything.
  bool reset = false;
  /// Milliseconds to stall between the two halves of the write.
  double stall_ms = 0.0;
};

/// Thread-safe, deterministic injector of serve-side faults. Attach one via
/// `serve::ServeOptions::faults`; `ServeEngine` consults `OnBatch`/`OnOffer`
/// and `ServeRegistry` consults `OnSwap`. With no armed events every hook
/// is a cheap no-op, so production configurations pass a null injector.
class ServeFaultInjector {
 public:
  explicit ServeFaultInjector(std::vector<ServeFault> faults);

  /// Called once per worker batch; returns the stall in milliseconds the
  /// worker must sleep before processing (0 when no stall fires).
  double OnBatch();
  /// Called once per externally offered request; returns how many extra
  /// synthetic offers of the same request to inject (0 = none).
  int OnOffer();
  /// Called once per swap attempt; true means the candidate snapshot must
  /// be corrupted before validation.
  bool OnSwap();
  /// Called once per accepted connection; returns the stall in milliseconds
  /// the acceptor must sleep before queueing it (0 when no stall fires).
  double OnAccept();
  /// Called once per response-frame write; returns the socket fault to
  /// apply to it (all-defaults when nothing fires).
  NetWriteFault OnNetWrite();

  ServeFaultCounts counts() const;
  /// Log lines describing each fired fault, for bench output.
  std::vector<std::string> log() const;

 private:
  struct Armed {
    ServeFault fault;
    bool consumed = false;
  };

  // Fires every armed, unconsumed event of `type` whose schedule matches
  // `ordinal`; returns how many fired and accumulates their magnitudes.
  int Fire(ServeFault::Type type, int64_t ordinal, const char* trigger,
           double* magnitude) RGAE_REQUIRES(mu_);

  mutable Mutex mu_{"ServeFaultInjector.mu"};
  std::vector<Armed> faults_ RGAE_GUARDED_BY(mu_);
  int64_t batches_ RGAE_GUARDED_BY(mu_) = 0;
  int64_t offers_ RGAE_GUARDED_BY(mu_) = 0;
  int64_t swaps_ RGAE_GUARDED_BY(mu_) = 0;
  int64_t accepts_ RGAE_GUARDED_BY(mu_) = 0;
  int64_t net_writes_ RGAE_GUARDED_BY(mu_) = 0;
  ServeFaultCounts counts_ RGAE_GUARDED_BY(mu_);
  std::vector<std::string> log_ RGAE_GUARDED_BY(mu_);
};

}  // namespace rgae

#endif  // RGAE_CORE_FAULT_INJECTION_H_
