#ifndef RGAE_CORE_FAULT_INJECTION_H_
#define RGAE_CORE_FAULT_INJECTION_H_

#include <string>
#include <vector>

#include "src/tensor/random.h"

namespace rgae {

class GaeModel;

/// One scheduled fault. Faults fire just before the training step of the
/// matching (phase, epoch); which weight entries they hit is drawn from the
/// injector's seeded RNG, so runs reproduce bit-identically.
struct FaultEvent {
  enum class Type {
    /// Overwrite one randomly chosen weight entry with NaN.
    kNanWeight,
    /// Multiply the optimizer's learning rate by `magnitude` (the spike
    /// persists until a rollback restores the checkpointed rate).
    kLrSpike,
    /// Add `magnitude`-scaled random noise to one parameter block, the
    /// footprint of a corrupted gradient having been applied.
    kCorruptGradient,
    /// Stall the epoch for `magnitude` milliseconds of wall time, the
    /// footprint of a hung data source or an overloaded machine. Drives
    /// the trainer's per-trial `Deadline` deterministically in tests:
    /// a persistent slow-epoch fault times out every full-length attempt
    /// while a reduced-epoch "degraded" retry never reaches the stalled
    /// epoch and completes in budget.
    kSlowEpoch,
  };

  Type type = Type::kNanWeight;
  /// Epoch within the phase at which the fault fires.
  int epoch = 0;
  /// Fire during pretraining (true) or the clustering phase (false).
  bool pretrain = false;
  /// Strength of the fault (LR multiplier / noise scale).
  double magnitude = 1e3;
  /// One-shot faults are consumed by their first firing, so a rolled-back
  /// run passes the epoch cleanly on retry. Persistent faults (`once ==
  /// false`) re-fire on every pass and make the run unrecoverable.
  bool once = true;
};

/// Human-readable name of a fault type ("nan-weight", ...).
const char* FaultTypeName(FaultEvent::Type type);

/// Deterministic, seed-driven fault injector used by the resilience tests
/// and `bench_robust_training` to prove each recovery path fires. Attach
/// one via `TrainerOptions::fault_injector`; the trainer calls `Apply`
/// before every training step.
class FaultInjector {
 public:
  FaultInjector(std::vector<FaultEvent> events, uint64_t seed);

  /// Applies every event scheduled for (phase, epoch) to the model.
  /// Returns the number of faults that fired.
  int Apply(bool pretrain, int epoch, GaeModel* model);

  /// Total number of faults fired so far (across rollback replays).
  int faults_fired() const { return faults_fired_; }

  /// Log lines describing each fired fault, for bench output.
  const std::vector<std::string>& log() const { return log_; }

 private:
  struct Scheduled {
    FaultEvent event;
    bool consumed = false;
  };

  std::vector<Scheduled> events_;
  Rng rng_;
  int faults_fired_ = 0;
  std::vector<std::string> log_;
};

}  // namespace rgae

#endif  // RGAE_CORE_FAULT_INJECTION_H_
