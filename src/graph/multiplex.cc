#include "src/graph/multiplex.h"

#include <cassert>
#include <cmath>
#include <map>
#include <sstream>

#include "src/util/fileio.h"

namespace rgae {

namespace {

std::nullopt_t LoadFail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return std::nullopt;
}

}  // namespace

MultiplexGraph::MultiplexGraph(int num_nodes, Matrix features,
                               std::vector<int> labels)
    : num_nodes_(num_nodes),
      features_(std::move(features)),
      labels_(std::move(labels)) {
  assert(num_nodes_ > 0);
  assert(features_.empty() || features_.rows() == num_nodes_);
  assert(labels_.empty() ||
         static_cast<int>(labels_.size()) == num_nodes_);
}

int MultiplexGraph::AddLayer() {
  layers_.emplace_back();
  return static_cast<int>(layers_.size()) - 1;
}

bool MultiplexGraph::AddEdge(int layer, int u, int v) {
  assert(layer >= 0 && layer < num_layers());
  assert(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_);
  if (u == v) return false;
  return layers_[layer].insert({std::min(u, v), std::max(u, v)}).second;
}

const std::set<std::pair<int, int>>& MultiplexGraph::layer_edges(
    int layer) const {
  assert(layer >= 0 && layer < num_layers());
  return layers_[layer];
}

int MultiplexGraph::LayerEdgeCount(int layer) const {
  return static_cast<int>(layer_edges(layer).size());
}

double MultiplexGraph::LayerHomophily(int layer) const {
  assert(!labels_.empty());
  const auto& edges = layer_edges(layer);
  if (edges.empty()) return 0.0;
  int same = 0;
  for (const auto& [a, b] : edges) {
    if (labels_[a] == labels_[b]) ++same;
  }
  return static_cast<double>(same) / edges.size();
}

AttributedGraph MultiplexGraph::Flatten(int min_layers) const {
  assert(min_layers >= 1);
  std::map<std::pair<int, int>, int> counts;
  for (const auto& layer : layers_) {
    for (const auto& edge : layer) ++counts[edge];
  }
  AttributedGraph g(num_nodes_);
  for (const auto& [edge, count] : counts) {
    if (count >= min_layers) g.AddEdge(edge.first, edge.second);
  }
  g.set_features(features_);
  if (!labels_.empty()) g.set_labels(labels_);
  return g;
}

MultiplexGraph MakeMultiplexCitationLike(const MultiplexCitationOptions& o,
                                         Rng& rng) {
  assert(o.num_layers >= 1);
  assert(o.edge_keep_prob > 0.0 && o.edge_keep_prob <= 1.0);
  // The underlying clean graph provides nodes, features, labels and the
  // shared ("true") edge set.
  const AttributedGraph base = MakeCitationLike(o.base, rng);
  const int n = base.num_nodes();

  MultiplexGraph mg(n, base.features(), base.labels());
  for (int l = 0; l < o.num_layers; ++l) {
    const int layer = mg.AddLayer();
    // Correlated part: a random subset of the true edges.
    for (const auto& [u, v] : base.edges()) {
      if (rng.Bernoulli(o.edge_keep_prob)) mg.AddEdge(layer, u, v);
    }
    // Layer-specific part: random noise links.
    const int noise_target =
        static_cast<int>(n * o.noise_edges_per_node / 2.0);
    int attempts = 0, added = 0;
    while (added < noise_target && attempts < noise_target * 30 + 100) {
      ++attempts;
      const int u = rng.UniformInt(n);
      const int v = rng.UniformInt(n);
      if (u != v && mg.AddEdge(layer, u, v)) ++added;
    }
  }
  return mg;
}

bool SaveMultiplex(const MultiplexGraph& g, const std::string& path,
                   std::string* error) {
  std::ostringstream out;
  out.precision(17);  // Lossless double round-trip.
  const bool has_labels = !g.labels().empty();
  out << "rgae-multiplex 1 " << g.num_nodes() << ' ' << g.num_layers() << ' '
      << g.features().cols() << ' ' << (has_labels ? 1 : 0) << '\n';
  for (int l = 0; l < g.num_layers(); ++l) {
    out << "layer " << l << ' ' << g.LayerEdgeCount(l) << '\n';
    for (const auto& [u, v] : g.layer_edges(l)) out << u << ' ' << v << '\n';
  }
  const Matrix& x = g.features();
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) {
      out << x(r, c) << (c + 1 == x.cols() ? '\n' : ' ');
    }
  }
  if (has_labels) {
    for (int label : g.labels()) out << label << '\n';
  }
  return WriteFileAtomic(path, out.str(), error);
}

std::optional<MultiplexGraph> LoadMultiplex(const std::string& path,
                                            std::string* error) {
  std::string contents;
  if (!ReadFileToString(path, &contents, error)) return std::nullopt;
  std::istringstream in(contents);
  std::string magic;
  int version = 0, n = 0, layers = 0, fdim = 0, has_labels = 0;
  in >> magic >> version >> n >> layers >> fdim >> has_labels;
  if (!in || magic != "rgae-multiplex") {
    return LoadFail(error, "bad magic (expected 'rgae-multiplex')");
  }
  if (version != 1) {
    return LoadFail(error,
                    "unsupported format version " + std::to_string(version));
  }
  if (n <= 0) {
    return LoadFail(error,
                    "node count " + std::to_string(n) + " must be positive");
  }
  if (layers < 0 || fdim < 0) {
    return LoadFail(error, "negative count in header (layers " +
                               std::to_string(layers) + ", feature dim " +
                               std::to_string(fdim) + ")");
  }

  MultiplexGraph g(n, Matrix(), {});
  for (int l = 0; l < layers; ++l) {
    std::string tag;
    int index = -1, count = -1;
    in >> tag >> index >> count;
    if (!in || tag != "layer") {
      return LoadFail(error, "truncated or malformed header of layer " +
                                 std::to_string(l) + " of " +
                                 std::to_string(layers) +
                                 " (layer-count mismatch?)");
    }
    if (index != l) {
      return LoadFail(error, "layer header index " + std::to_string(index) +
                                 " does not match position " +
                                 std::to_string(l));
    }
    if (count < 0) {
      return LoadFail(error, "negative edge count in layer " +
                                 std::to_string(l));
    }
    g.AddLayer();
    for (int i = 0; i < count; ++i) {
      int u = 0, v = 0;
      in >> u >> v;
      if (!in) {
        return LoadFail(error, "truncated edge list at edge " +
                                   std::to_string(i) + " of " +
                                   std::to_string(count) + " in layer " +
                                   std::to_string(l));
      }
      if (u < 0 || u >= n || v < 0 || v >= n) {
        return LoadFail(error, "layer " + std::to_string(l) + " edge " +
                                   std::to_string(i) + " endpoint (" +
                                   std::to_string(u) + ", " +
                                   std::to_string(v) + ") out of range [0, " +
                                   std::to_string(n) + ")");
      }
      if (u == v) {
        return LoadFail(error, "layer " + std::to_string(l) + " edge " +
                                   std::to_string(i) + " is a self-loop on " +
                                   std::to_string(u));
      }
      if (!g.AddEdge(l, u, v)) {
        return LoadFail(error, "layer " + std::to_string(l) +
                                   " repeats edge (" + std::to_string(u) +
                                   ", " + std::to_string(v) + ")");
      }
    }
  }

  Matrix x;
  if (fdim > 0) {
    x = Matrix(n, fdim);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < fdim; ++c) {
        in >> x(r, c);
        if (!in) {
          return LoadFail(error,
                          "truncated or non-numeric feature value at row " +
                              std::to_string(r) + ", column " +
                              std::to_string(c));
        }
        if (!std::isfinite(x(r, c))) {
          return LoadFail(error, "non-finite feature value at row " +
                                     std::to_string(r) + ", column " +
                                     std::to_string(c));
        }
      }
    }
  }
  std::vector<int> labels;
  if (has_labels) {
    labels.resize(n);
    for (int i = 0; i < n; ++i) {
      in >> labels[i];
      if (!in) {
        return LoadFail(error,
                        "truncated labels at node " + std::to_string(i));
      }
      if (labels[i] < 0 || labels[i] >= n) {
        return LoadFail(error, "label " + std::to_string(labels[i]) +
                                   " of node " + std::to_string(i) +
                                   " out of range [0, " + std::to_string(n) +
                                   ")");
      }
    }
  }

  // Rebuild with the attribute payload attached (the edge-loading pass
  // above used a bare graph because features arrive after the layers).
  MultiplexGraph result(n, std::move(x), std::move(labels));
  for (int l = 0; l < g.num_layers(); ++l) {
    result.AddLayer();
    for (const auto& [u, v] : g.layer_edges(l)) result.AddEdge(l, u, v);
  }
  return result;
}

}  // namespace rgae
