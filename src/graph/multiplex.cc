#include "src/graph/multiplex.h"

#include <cassert>
#include <map>

namespace rgae {

MultiplexGraph::MultiplexGraph(int num_nodes, Matrix features,
                               std::vector<int> labels)
    : num_nodes_(num_nodes),
      features_(std::move(features)),
      labels_(std::move(labels)) {
  assert(num_nodes_ > 0);
  assert(features_.empty() || features_.rows() == num_nodes_);
  assert(labels_.empty() ||
         static_cast<int>(labels_.size()) == num_nodes_);
}

int MultiplexGraph::AddLayer() {
  layers_.emplace_back();
  return static_cast<int>(layers_.size()) - 1;
}

bool MultiplexGraph::AddEdge(int layer, int u, int v) {
  assert(layer >= 0 && layer < num_layers());
  assert(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_);
  if (u == v) return false;
  return layers_[layer].insert({std::min(u, v), std::max(u, v)}).second;
}

const std::set<std::pair<int, int>>& MultiplexGraph::layer_edges(
    int layer) const {
  assert(layer >= 0 && layer < num_layers());
  return layers_[layer];
}

int MultiplexGraph::LayerEdgeCount(int layer) const {
  return static_cast<int>(layer_edges(layer).size());
}

double MultiplexGraph::LayerHomophily(int layer) const {
  assert(!labels_.empty());
  const auto& edges = layer_edges(layer);
  if (edges.empty()) return 0.0;
  int same = 0;
  for (const auto& [a, b] : edges) {
    if (labels_[a] == labels_[b]) ++same;
  }
  return static_cast<double>(same) / edges.size();
}

AttributedGraph MultiplexGraph::Flatten(int min_layers) const {
  assert(min_layers >= 1);
  std::map<std::pair<int, int>, int> counts;
  for (const auto& layer : layers_) {
    for (const auto& edge : layer) ++counts[edge];
  }
  AttributedGraph g(num_nodes_);
  for (const auto& [edge, count] : counts) {
    if (count >= min_layers) g.AddEdge(edge.first, edge.second);
  }
  g.set_features(features_);
  if (!labels_.empty()) g.set_labels(labels_);
  return g;
}

MultiplexGraph MakeMultiplexCitationLike(const MultiplexCitationOptions& o,
                                         Rng& rng) {
  assert(o.num_layers >= 1);
  assert(o.edge_keep_prob > 0.0 && o.edge_keep_prob <= 1.0);
  // The underlying clean graph provides nodes, features, labels and the
  // shared ("true") edge set.
  const AttributedGraph base = MakeCitationLike(o.base, rng);
  const int n = base.num_nodes();

  MultiplexGraph mg(n, base.features(), base.labels());
  for (int l = 0; l < o.num_layers; ++l) {
    const int layer = mg.AddLayer();
    // Correlated part: a random subset of the true edges.
    for (const auto& [u, v] : base.edges()) {
      if (rng.Bernoulli(o.edge_keep_prob)) mg.AddEdge(layer, u, v);
    }
    // Layer-specific part: random noise links.
    const int noise_target =
        static_cast<int>(n * o.noise_edges_per_node / 2.0);
    int attempts = 0, added = 0;
    while (added < noise_target && attempts < noise_target * 30 + 100) {
      ++attempts;
      const int u = rng.UniformInt(n);
      const int v = rng.UniformInt(n);
      if (u != v && mg.AddEdge(layer, u, v)) ++added;
    }
  }
  return mg;
}

}  // namespace rgae
