#ifndef RGAE_GRAPH_CORRUPT_H_
#define RGAE_GRAPH_CORRUPT_H_

#include "src/graph/graph.h"
#include "src/tensor/random.h"

namespace rgae {

/// Corruption utilities for the robustness experiments (paper Figs. 7–8).
/// Each function mutates the graph in place and is deterministic given the
/// RNG state, so a couple (model, R-model) can be fed byte-identical
/// corrupted inputs by reusing the same seed.

/// Connects `count` random currently-unlinked node pairs. Returns the number
/// of edges actually added (may be less on tiny/dense graphs).
int AddRandomEdges(AttributedGraph* g, int count, Rng& rng);

/// Removes `count` random existing edges. Returns the number removed.
int DropRandomEdges(AttributedGraph* g, int count, Rng& rng);

/// Adds i.i.d. N(0, stddev²) noise to every feature entry.
void AddFeatureNoise(AttributedGraph* g, double stddev, Rng& rng);

/// Zeroes `count` random feature columns. Returns the number zeroed.
int DropFeatureColumns(AttributedGraph* g, int count, Rng& rng);

}  // namespace rgae

#endif  // RGAE_GRAPH_CORRUPT_H_
