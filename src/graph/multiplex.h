#ifndef RGAE_GRAPH_MULTIPLEX_H_
#define RGAE_GRAPH_MULTIPLEX_H_

#include <optional>
#include <string>
#include <vector>

#include "src/graph/generators.h"
#include "src/graph/graph.h"

namespace rgae {

/// Multiplex attributed graph — the paper's stated future-work direction
/// ("we plan to investigate the extensibility of our operators to multiplex
/// graphs, in which each couple of nodes can be connected by multiple
/// edges").
///
/// A multiplex graph shares one node set, one feature matrix and one label
/// vector across L edge layers (e.g. citation + co-author + venue layers).
/// `Flatten` projects the layers onto a single `AttributedGraph` that the
/// existing GAE zoo and the Ξ/Υ operators consume unchanged: an edge
/// survives when it appears in at least `min_layers` layers, which lets a
/// noisy layer be out-voted by cleaner ones.
class MultiplexGraph {
 public:
  MultiplexGraph(int num_nodes, Matrix features, std::vector<int> labels);

  int num_nodes() const { return num_nodes_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  const Matrix& features() const { return features_; }
  const std::vector<int>& labels() const { return labels_; }

  /// Appends an empty edge layer; returns its index.
  int AddLayer();
  /// Adds an undirected edge to layer `layer`.
  bool AddEdge(int layer, int u, int v);
  /// Edge set of one layer.
  const std::set<std::pair<int, int>>& layer_edges(int layer) const;
  /// Number of edges in one layer.
  int LayerEdgeCount(int layer) const;

  /// Fraction of same-label edges in one layer.
  double LayerHomophily(int layer) const;

  /// Projects to a single attributed graph: an edge is kept when it occurs
  /// in >= `min_layers` layers (1 = union, num_layers() = intersection).
  AttributedGraph Flatten(int min_layers = 1) const;

 private:
  int num_nodes_;
  Matrix features_;
  std::vector<int> labels_;
  std::vector<std::set<std::pair<int, int>>> layers_;
};

/// Options for the synthetic multiplex generator. Each layer is an
/// independently *corrupted copy* of one underlying citation-like graph:
/// every true edge survives in a layer with `edge_keep_prob`, and each
/// layer adds its own `noise_edges_per_node` random links. True edges are
/// therefore correlated across layers while noise is layer-specific, so a
/// majority-vote `Flatten` recovers the clean structure that a plain union
/// buries in noise — the setting where extending Ξ/Υ to multiplex graphs
/// pays off.
struct MultiplexCitationOptions {
  CitationLikeOptions base;
  int num_layers = 3;
  /// Probability that a true (base) edge appears in a given layer.
  double edge_keep_prob = 0.8;
  /// Expected per-layer random noise edges per node.
  double noise_edges_per_node = 1.5;
};

/// Generates a multiplex citation-like graph: shared features/labels, one
/// corrupted copy of the base edge set per layer.
MultiplexGraph MakeMultiplexCitationLike(const MultiplexCitationOptions& o,
                                         Rng& rng);

/// Text round trip mirroring graph/io.h. Format (doubles at precision 17,
/// a lossless round-trip):
///
///   rgae-multiplex 1 <nodes> <layers> <fdim> <has_labels>
///   layer <index> <edge_count>   (repeated <layers> times, edges follow)
///   <u> <v>
///   <feature rows> <labels>
///
/// `SaveMultiplex` publishes the file atomically (tmp + fsync + rename,
/// util/fileio.h), so a crash mid-save leaves the previous file intact.
bool SaveMultiplex(const MultiplexGraph& g, const std::string& path,
                   std::string* error = nullptr);

/// Loads with `LoadGraph`'s validation contract: every malformed input —
/// bad magic or version, negative counts, a layer header whose index does
/// not match its position (layer-count mismatch), out-of-range or
/// self-loop or duplicate edges, truncation anywhere, non-finite feature
/// values, out-of-range labels — yields `std::nullopt` and a descriptive
/// message in `*error` (when non-null) naming the offending line item.
std::optional<MultiplexGraph> LoadMultiplex(const std::string& path,
                                            std::string* error = nullptr);

}  // namespace rgae

#endif  // RGAE_GRAPH_MULTIPLEX_H_
