#ifndef RGAE_GRAPH_IO_H_
#define RGAE_GRAPH_IO_H_

#include <string>

#include "src/graph/graph.h"

namespace rgae {

/// Plain-text attributed-graph serialization.
///
/// Format (whitespace separated):
///   line 1: `rgae-graph 1 <num_nodes> <num_edges> <feature_dim> <has_labels>`
///   then one `u v` pair per edge,
///   then (if feature_dim > 0) one feature row per node,
///   then (if has_labels) one label per node.
///
/// Returns false on I/O or format errors; `*g` is unspecified on failure.
/// `LoadGraph` validates the payload, not just the syntax: out-of-range or
/// self-loop edge endpoints, non-finite feature values, and labels outside
/// [0, num_nodes) are all rejected. When `error` is non-null it receives a
/// descriptive message naming the offending record.
bool SaveGraph(const AttributedGraph& g, const std::string& path);
bool LoadGraph(const std::string& path, AttributedGraph* g,
               std::string* error = nullptr);

}  // namespace rgae

#endif  // RGAE_GRAPH_IO_H_
