#include "src/graph/io.h"

#include <fstream>
#include <iomanip>

namespace rgae {

bool SaveGraph(const AttributedGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << std::setprecision(17);  // Lossless double round-trip.
  out << "rgae-graph 1 " << g.num_nodes() << ' ' << g.num_edges() << ' '
      << g.feature_dim() << ' ' << (g.has_labels() ? 1 : 0) << '\n';
  for (const auto& [u, v] : g.edges()) out << u << ' ' << v << '\n';
  const Matrix& x = g.features();
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) {
      out << x(r, c) << (c + 1 == x.cols() ? '\n' : ' ');
    }
  }
  if (g.has_labels()) {
    for (int label : g.labels()) out << label << '\n';
  }
  return static_cast<bool>(out);
}

bool LoadGraph(const std::string& path, AttributedGraph* g) {
  std::ifstream in(path);
  if (!in) return false;
  std::string magic;
  int version = 0, n = 0, e = 0, fdim = 0, has_labels = 0;
  in >> magic >> version >> n >> e >> fdim >> has_labels;
  if (!in || magic != "rgae-graph" || version != 1 || n < 0 || e < 0 ||
      fdim < 0) {
    return false;
  }
  *g = AttributedGraph(n);
  for (int i = 0; i < e; ++i) {
    int u = 0, v = 0;
    in >> u >> v;
    if (!in || u < 0 || u >= n || v < 0 || v >= n) return false;
    g->AddEdge(u, v);
  }
  if (fdim > 0) {
    Matrix x(n, fdim);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < fdim; ++c) {
        in >> x(r, c);
        if (!in) return false;
      }
    }
    g->set_features(std::move(x));
  }
  if (has_labels) {
    std::vector<int> labels(n);
    for (int i = 0; i < n; ++i) {
      in >> labels[i];
      if (!in) return false;
    }
    g->set_labels(std::move(labels));
  }
  return true;
}

}  // namespace rgae
