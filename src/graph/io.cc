#include "src/graph/io.h"

#include <cmath>
#include <fstream>
#include <iomanip>

namespace rgae {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool SaveGraph(const AttributedGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << std::setprecision(17);  // Lossless double round-trip.
  out << "rgae-graph 1 " << g.num_nodes() << ' ' << g.num_edges() << ' '
      << g.feature_dim() << ' ' << (g.has_labels() ? 1 : 0) << '\n';
  for (const auto& [u, v] : g.edges()) out << u << ' ' << v << '\n';
  const Matrix& x = g.features();
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) {
      out << x(r, c) << (c + 1 == x.cols() ? '\n' : ' ');
    }
  }
  if (g.has_labels()) {
    for (int label : g.labels()) out << label << '\n';
  }
  return static_cast<bool>(out);
}

bool LoadGraph(const std::string& path, AttributedGraph* g,
               std::string* error) {
  std::ifstream in(path);
  if (!in) return Fail(error, "cannot open '" + path + "'");
  std::string magic;
  int version = 0, n = 0, e = 0, fdim = 0, has_labels = 0;
  in >> magic >> version >> n >> e >> fdim >> has_labels;
  if (!in || magic != "rgae-graph") {
    return Fail(error, "bad magic (expected 'rgae-graph')");
  }
  if (version != 1) {
    return Fail(error,
                "unsupported format version " + std::to_string(version));
  }
  if (n < 0 || e < 0 || fdim < 0) {
    return Fail(error, "negative count in header (nodes " +
                           std::to_string(n) + ", edges " + std::to_string(e) +
                           ", feature dim " + std::to_string(fdim) + ")");
  }
  *g = AttributedGraph(n);
  for (int i = 0; i < e; ++i) {
    int u = 0, v = 0;
    in >> u >> v;
    if (!in) return Fail(error, "truncated edge list at edge " +
                                    std::to_string(i) + " of " +
                                    std::to_string(e));
    if (u < 0 || u >= n || v < 0 || v >= n) {
      return Fail(error, "edge " + std::to_string(i) + " endpoint (" +
                             std::to_string(u) + ", " + std::to_string(v) +
                             ") out of range [0, " + std::to_string(n) + ")");
    }
    if (u == v) {
      return Fail(error, "edge " + std::to_string(i) + " is a self-loop on " +
                             std::to_string(u));
    }
    g->AddEdge(u, v);
  }
  if (fdim > 0) {
    Matrix x(n, fdim);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < fdim; ++c) {
        in >> x(r, c);
        if (!in) {
          return Fail(error, "truncated or non-numeric feature value at row " +
                                 std::to_string(r) + ", column " +
                                 std::to_string(c));
        }
        if (!std::isfinite(x(r, c))) {
          return Fail(error, "non-finite feature value at row " +
                                 std::to_string(r) + ", column " +
                                 std::to_string(c));
        }
      }
    }
    g->set_features(std::move(x));
  }
  if (has_labels) {
    std::vector<int> labels(n);
    for (int i = 0; i < n; ++i) {
      in >> labels[i];
      if (!in) {
        return Fail(error, "truncated labels at node " + std::to_string(i));
      }
      if (labels[i] < 0 || labels[i] >= n) {
        return Fail(error, "label " + std::to_string(labels[i]) +
                               " of node " + std::to_string(i) +
                               " out of range [0, " + std::to_string(n) + ")");
      }
    }
    g->set_labels(std::move(labels));
  }
  return true;
}

}  // namespace rgae
