#ifndef RGAE_GRAPH_ANALYSIS_H_
#define RGAE_GRAPH_ANALYSIS_H_

#include <vector>

#include "src/graph/graph.h"

namespace rgae {

/// Structural analysis utilities for attributed graphs. Used by the
/// dataset-statistics reporting, the Υ evaluation (how clustering-oriented
/// is A^self_clus really?) and the spectral baseline.

/// Newman modularity of a partition: Q = Σ_c (e_c/m - (d_c/2m)²) where e_c
/// is the number of intra-cluster edges and d_c the total degree of
/// cluster c. Returns 0 for an empty graph.
double Modularity(const AttributedGraph& g,
                  const std::vector<int>& assignments, int num_clusters);

/// Connected components; returns one component id per node (ids are dense,
/// 0-based, in order of first appearance) and writes the component count to
/// `*count` when non-null.
std::vector<int> ConnectedComponents(const AttributedGraph& g,
                                     int* count = nullptr);

/// Size of the largest connected component.
int LargestComponentSize(const AttributedGraph& g);

/// Global clustering coefficient (3 * triangles / connected triples);
/// 0 for graphs without any wedge.
double GlobalClusteringCoefficient(const AttributedGraph& g);

/// Summary statistics bundle for dataset reporting.
struct GraphStats {
  int nodes = 0;
  int edges = 0;
  double mean_degree = 0.0;
  int max_degree = 0;
  int components = 0;
  int largest_component = 0;
  double homophily = -1.0;  // -1 when unlabeled.
  double clustering_coefficient = 0.0;
};

/// Computes all statistics in one pass.
GraphStats ComputeStats(const AttributedGraph& g);

}  // namespace rgae

#endif  // RGAE_GRAPH_ANALYSIS_H_
