#include "src/graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace rgae {

namespace {

// Draws cluster sizes that sum to `n`: balanced when imbalance == 0, skewed
// toward earlier clusters as imbalance -> 1.
std::vector<int> DrawClusterSizes(int n, int k, double imbalance, Rng& rng) {
  std::vector<double> weights(k);
  for (int c = 0; c < k; ++c) {
    weights[c] = 1.0 + imbalance * rng.Uniform() * k;
  }
  double total = 0.0;
  for (double w : weights) total += w;
  std::vector<int> sizes(k, 1);  // Every cluster gets at least one node.
  int assigned = k;
  for (int c = 0; c < k; ++c) {
    const int extra = static_cast<int>((n - k) * weights[c] / total);
    sizes[c] += extra;
    assigned += extra;
  }
  for (int c = 0; assigned < n; ++assigned, c = (c + 1) % k) ++sizes[c];
  return sizes;
}

}  // namespace

AttributedGraph MakeCitationLike(const CitationLikeOptions& o, Rng& rng) {
  assert(o.num_nodes > 0 && o.num_clusters > 0 && o.feature_dim > 0);
  assert(o.num_clusters * o.topic_words <= o.feature_dim);
  AttributedGraph g(o.num_nodes);

  // Labels: contiguous block assignment, then shuffled node order so that
  // node id carries no cluster information.
  const std::vector<int> sizes =
      DrawClusterSizes(o.num_nodes, o.num_clusters, o.imbalance, rng);
  std::vector<int> perm(o.num_nodes);
  for (int i = 0; i < o.num_nodes; ++i) perm[i] = i;
  rng.Shuffle(&perm);
  std::vector<int> labels(o.num_nodes);
  {
    int next = 0;
    for (int c = 0; c < o.num_clusters; ++c) {
      for (int s = 0; s < sizes[c]; ++s) labels[perm[next++]] = c;
    }
  }
  g.set_labels(labels);
  std::vector<std::vector<int>> members(o.num_clusters);
  for (int i = 0; i < o.num_nodes; ++i) members[labels[i]].push_back(i);

  // Edges: sparse SBM sampled by expected edge counts per block pair, which
  // keeps generation O(E) instead of O(N²).
  auto sample_edges = [&](const std::vector<int>& us,
                          const std::vector<int>& vs, double expected,
                          bool same) {
    const int target = static_cast<int>(std::lround(expected));
    int attempts = 0;
    int added = 0;
    const int max_attempts = target * 20 + 50;
    while (added < target && attempts < max_attempts) {
      ++attempts;
      const int u = us[rng.UniformInt(static_cast<int>(us.size()))];
      const int v = vs[rng.UniformInt(static_cast<int>(vs.size()))];
      if (u == v) continue;
      if (same || labels[u] != labels[v]) {
        if (g.AddEdge(u, v)) ++added;
      }
    }
  };
  std::vector<int> all(o.num_nodes);
  for (int i = 0; i < o.num_nodes; ++i) all[i] = i;
  for (int c = 0; c < o.num_clusters; ++c) {
    // Each intra edge covers two endpoints: expected edges = n_c * deg / 2.
    sample_edges(members[c], members[c],
                 members[c].size() * o.intra_degree / 2.0, /*same=*/true);
  }
  sample_edges(all, all, o.num_nodes * o.inter_degree / 2.0, /*same=*/false);

  // Features: per-cluster topic words + background noise.
  Matrix x(o.num_nodes, o.feature_dim);
  for (int i = 0; i < o.num_nodes; ++i) {
    const int c = labels[i];
    const int topic_begin = c * o.topic_words;
    for (int j = 0; j < o.feature_dim; ++j) {
      const bool topical = j >= topic_begin && j < topic_begin + o.topic_words;
      const double p = topical ? o.word_on_prob : o.word_noise_prob;
      if (rng.Bernoulli(p)) x(i, j) = 1.0;
    }
  }
  g.set_features(std::move(x));
  g.NormalizeFeatureRows();
  return g;
}

AttributedGraph MakeAirTrafficLike(const AirTrafficLikeOptions& o, Rng& rng) {
  assert(o.num_nodes > 0 && o.num_levels > 0);
  AttributedGraph g(o.num_nodes);

  // Activity levels (balanced), shuffled over node ids.
  std::vector<int> labels(o.num_nodes);
  for (int i = 0; i < o.num_nodes; ++i) labels[i] = i % o.num_levels;
  rng.Shuffle(&labels);
  g.set_labels(labels);

  // Chung-Lu weights: expected degree grows geometrically with the level,
  // with lognormal jitter so that neighboring levels overlap slightly.
  std::vector<double> weight(o.num_nodes);
  double total_weight = 0.0;
  for (int i = 0; i < o.num_nodes; ++i) {
    const double mean_deg =
        o.base_degree * std::pow(o.level_ratio, labels[i]);
    weight[i] = mean_deg * std::exp(rng.Gaussian(0.0, o.degree_jitter));
    total_weight += weight[i];
  }
  // Edge sampling: number of edges = total expected degree / 2; endpoints
  // drawn proportionally to weight (classic Chung-Lu approximation).
  const int target_edges = static_cast<int>(total_weight / 2.0);
  std::vector<double> cumulative(o.num_nodes);
  double acc = 0.0;
  for (int i = 0; i < o.num_nodes; ++i) {
    acc += weight[i];
    cumulative[i] = acc;
  }
  auto draw_node = [&]() {
    const double x = rng.Uniform() * acc;
    return static_cast<int>(std::lower_bound(cumulative.begin(),
                                             cumulative.end(), x) -
                            cumulative.begin());
  };
  int added = 0;
  int attempts = 0;
  const int max_attempts = target_edges * 30 + 100;
  while (added < target_edges && attempts < max_attempts) {
    ++attempts;
    const int u = draw_node();
    const int v = draw_node();
    if (u == v) continue;
    if (g.AddEdge(u, v)) ++added;
  }

  g.SetOneHotDegreeFeatures(o.max_degree_bucket);
  g.NormalizeFeatureRows();  // One-hot rows are already unit norm; harmless.
  return g;
}

}  // namespace rgae
