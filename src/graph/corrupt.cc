#include "src/graph/corrupt.h"

#include <vector>

namespace rgae {

int AddRandomEdges(AttributedGraph* g, int count, Rng& rng) {
  const int n = g->num_nodes();
  if (n < 2 || count <= 0) return 0;  // No addable pair exists.
  // A (near-)complete graph exhausts max_attempts instead of looping
  // forever: the return value reports how many edges actually fit.
  int added = 0;
  int attempts = 0;
  const int max_attempts = count * 50 + 100;
  while (added < count && attempts < max_attempts) {
    ++attempts;
    const int u = rng.UniformInt(n);
    const int v = rng.UniformInt(n);
    if (u == v) continue;
    if (g->AddEdge(u, v)) ++added;
  }
  return added;
}

int DropRandomEdges(AttributedGraph* g, int count, Rng& rng) {
  std::vector<std::pair<int, int>> edges(g->edges().begin(),
                                         g->edges().end());
  int dropped = 0;
  while (dropped < count && !edges.empty()) {
    const int idx = rng.UniformInt(static_cast<int>(edges.size()));
    g->RemoveEdge(edges[idx].first, edges[idx].second);
    edges[idx] = edges.back();
    edges.pop_back();
    ++dropped;
  }
  return dropped;
}

void AddFeatureNoise(AttributedGraph* g, double stddev, Rng& rng) {
  Matrix* x = g->mutable_features();
  if (x->empty()) return;  // Featureless graphs: nothing to perturb.
  for (int r = 0; r < x->rows(); ++r) {
    double* p = x->row(r);
    for (int c = 0; c < x->cols(); ++c) p[c] += rng.Gaussian(0.0, stddev);
  }
}

int DropFeatureColumns(AttributedGraph* g, int count, Rng& rng) {
  Matrix* x = g->mutable_features();
  std::vector<int> cols(x->cols());
  for (int c = 0; c < x->cols(); ++c) cols[c] = c;
  rng.Shuffle(&cols);
  const int to_drop = std::min(count, x->cols());
  for (int i = 0; i < to_drop; ++i) {
    for (int r = 0; r < x->rows(); ++r) (*x)(r, cols[i]) = 0.0;
  }
  return to_drop;
}

}  // namespace rgae
