#ifndef RGAE_GRAPH_GENERATORS_H_
#define RGAE_GRAPH_GENERATORS_H_

#include "src/graph/graph.h"
#include "src/tensor/random.h"

namespace rgae {

/// Parameters for the attributed stochastic-block-model generator that
/// stands in for the citation networks (Cora / Citeseer / Pubmed).
///
/// The generator controls exactly the properties the paper's analysis
/// depends on: sparsity (real citation graphs are highly sparse, causing
/// over-segmentation), a controlled fraction of inter-cluster links (the
/// "clustering-irrelevant" edges causing under-segmentation), and
/// cluster-correlated high-dimensional sparse features (bag-of-words-like).
struct CitationLikeOptions {
  int num_nodes = 800;
  int num_clusters = 7;
  int feature_dim = 500;
  /// Expected within-cluster degree per node.
  double intra_degree = 3.0;
  /// Expected cross-cluster degree per node (clustering-irrelevant links).
  double inter_degree = 1.0;
  /// Number of "topic words" active per cluster.
  int topic_words = 60;
  /// Probability a topic word of the node's own cluster is on.
  double word_on_prob = 0.25;
  /// Probability an off-topic word is on (feature noise).
  double word_noise_prob = 0.01;
  /// Dirichlet-like cluster-size imbalance in [0, 1); 0 = balanced.
  double imbalance = 0.2;
};

/// Generates a citation-like attributed graph. Features are binary
/// bag-of-words rows, L2-normalized as in the paper; labels are the block
/// memberships.
AttributedGraph MakeCitationLike(const CitationLikeOptions& options, Rng& rng);

/// Parameters for the air-traffic-like generator (USA / Europe / Brazil).
///
/// Air-traffic networks have no node attributes; labels are airport
/// activity levels and degree strongly separates them. We generate a
/// Chung-Lu graph whose expected degrees are drawn per activity level, then
/// build X as the one-hot degree encoding — the exact construction the
/// paper applies to these datasets.
struct AirTrafficLikeOptions {
  int num_nodes = 400;
  int num_levels = 4;  // K clusters = activity quartiles.
  /// Expected degree of the least active level; each level multiplies it.
  double base_degree = 3.0;
  /// Multiplicative degree gap between consecutive activity levels.
  double level_ratio = 2.2;
  /// Lognormal jitter of per-node weights (makes levels overlap a little).
  double degree_jitter = 0.25;
  /// Cap for the one-hot degree encoding.
  int max_degree_bucket = 60;
};

/// Generates an air-traffic-like graph with one-hot degree features and
/// activity-level labels.
AttributedGraph MakeAirTrafficLike(const AirTrafficLikeOptions& options,
                                   Rng& rng);

}  // namespace rgae

#endif  // RGAE_GRAPH_GENERATORS_H_
