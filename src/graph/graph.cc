#include "src/graph/graph.h"

#include <algorithm>
#include <cassert>

namespace rgae {

namespace {

std::pair<int, int> Canonical(int u, int v) {
  return {std::min(u, v), std::max(u, v)};
}

}  // namespace

int AttributedGraph::num_clusters() const {
  int k = 0;
  for (int label : labels_) k = std::max(k, label + 1);
  return k;
}

bool AttributedGraph::AddEdge(int u, int v) {
  assert(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_);
  if (u == v) return false;
  return edges_.insert(Canonical(u, v)).second;
}

bool AttributedGraph::RemoveEdge(int u, int v) {
  return edges_.erase(Canonical(u, v)) > 0;
}

bool AttributedGraph::HasEdge(int u, int v) const {
  if (u == v) return false;
  return edges_.count(Canonical(u, v)) > 0;
}

int AttributedGraph::Degree(int u) const {
  int d = 0;
  for (const auto& [a, b] : edges_) {
    if (a == u || b == u) ++d;
  }
  return d;
}

std::vector<int> AttributedGraph::Degrees() const {
  std::vector<int> deg(num_nodes_, 0);
  for (const auto& [a, b] : edges_) {
    ++deg[a];
    ++deg[b];
  }
  return deg;
}

CsrMatrix AttributedGraph::Adjacency() const {
  std::vector<Triplet> t;
  t.reserve(edges_.size() * 2);
  for (const auto& [a, b] : edges_) {
    t.push_back({a, b, 1.0});
    t.push_back({b, a, 1.0});
  }
  return CsrMatrix::FromTriplets(num_nodes_, num_nodes_, std::move(t));
}

CsrMatrix AttributedGraph::NormalizedAdjacency() const {
  return Adjacency().AddSelfLoops().SymmetricallyNormalized();
}

void AttributedGraph::SetOneHotDegreeFeatures(int max_degree) {
  assert(max_degree >= 0);
  const std::vector<int> deg = Degrees();
  Matrix x(num_nodes_, max_degree + 1);
  for (int i = 0; i < num_nodes_; ++i) {
    x(i, std::min(deg[i], max_degree)) = 1.0;
  }
  features_ = std::move(x);
}

void AttributedGraph::NormalizeFeatureRows() { NormalizeRowsL2(&features_); }

double AttributedGraph::EdgeHomophily() const {
  assert(has_labels());
  if (edges_.empty()) return 0.0;
  int same = 0;
  for (const auto& [a, b] : edges_) {
    if (labels_[a] == labels_[b]) ++same;
  }
  return static_cast<double>(same) / edges_.size();
}

CsrMatrix BuildClusterGraph(const std::vector<int>& assignments,
                            int num_clusters) {
  const int n = static_cast<int>(assignments.size());
  std::vector<std::vector<int>> members(num_clusters);
  for (int i = 0; i < n; ++i) {
    assert(assignments[i] >= 0 && assignments[i] < num_clusters);
    members[assignments[i]].push_back(i);
  }
  std::vector<Triplet> t;
  for (const auto& cluster : members) {
    if (cluster.empty()) continue;
    const double w = 1.0 / static_cast<double>(cluster.size());
    for (int i : cluster) {
      for (int j : cluster) t.push_back({i, j, w});
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(t));
}

}  // namespace rgae
