#ifndef RGAE_GRAPH_GRAPH_H_
#define RGAE_GRAPH_GRAPH_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/csr.h"
#include "src/tensor/matrix.h"

namespace rgae {

/// An undirected attributed graph G = (V, E, X) with optional ground-truth
/// labels, the primary input of every model in the library.
///
/// Edges are stored as a set of canonical (min, max) pairs with no
/// self-loops; `Adjacency()` materializes the symmetric 0/1 CSR matrix and
/// `NormalizedAdjacency()` the GCN filter à = D^-1/2 (A + I) D^-1/2.
class AttributedGraph {
 public:
  AttributedGraph() = default;

  /// Creates a graph with `num_nodes` nodes, no edges, and empty features.
  explicit AttributedGraph(int num_nodes) : num_nodes_(num_nodes) {}

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  int num_clusters() const;

  /// Adds the undirected edge {u, v}. Self-loops and duplicates are ignored.
  /// Returns true if the edge was newly inserted.
  bool AddEdge(int u, int v);
  /// Removes the undirected edge {u, v}; returns true if it existed.
  bool RemoveEdge(int u, int v);
  /// True if {u, v} is an edge.
  bool HasEdge(int u, int v) const;

  /// All edges as canonical (u < v) pairs, sorted.
  const std::set<std::pair<int, int>>& edges() const { return edges_; }

  /// Degree of node u (number of incident edges).
  int Degree(int u) const;
  /// Degrees of all nodes.
  std::vector<int> Degrees() const;

  /// Node feature matrix X (num_nodes x feature_dim); may be empty.
  const Matrix& features() const { return features_; }
  Matrix* mutable_features() { return &features_; }
  void set_features(Matrix x) { features_ = std::move(x); }
  int feature_dim() const { return features_.cols(); }

  /// Ground-truth cluster labels; empty when unknown.
  const std::vector<int>& labels() const { return labels_; }
  void set_labels(std::vector<int> labels) { labels_ = std::move(labels); }
  bool has_labels() const { return !labels_.empty(); }

  /// Symmetric binary adjacency matrix A (no self-loops).
  CsrMatrix Adjacency() const;
  /// GCN filter à = D^-1/2 (A + I) D^-1/2.
  CsrMatrix NormalizedAdjacency() const;

  /// Replaces X with the (row-truncated/padded) one-hot encoding of node
  /// degrees in `max_degree + 1` buckets — the construction the paper uses
  /// for the attribute-free air-traffic networks.
  void SetOneHotDegreeFeatures(int max_degree);

  /// L2-normalizes each feature row (the paper normalizes X for all
  /// datasets).
  void NormalizeFeatureRows();

  /// Fraction of edges joining same-label endpoints (requires labels).
  double EdgeHomophily() const;

 private:
  int num_nodes_ = 0;
  std::set<std::pair<int, int>> edges_;
  Matrix features_;
  std::vector<int> labels_;
};

/// Builds the clustering graph A^clus of Proposition 2: a_ij = 1/|C_k| when
/// i and j share cluster k under `assignments`, 0 otherwise (includes the
/// diagonal, matching the k-means expansion).
CsrMatrix BuildClusterGraph(const std::vector<int>& assignments,
                            int num_clusters);

}  // namespace rgae

#endif  // RGAE_GRAPH_GRAPH_H_
