#include "src/graph/analysis.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace rgae {

namespace {

std::vector<std::vector<int>> AdjacencyLists(const AttributedGraph& g) {
  std::vector<std::vector<int>> adj(g.num_nodes());
  for (const auto& [u, v] : g.edges()) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  return adj;
}

}  // namespace

double Modularity(const AttributedGraph& g,
                  const std::vector<int>& assignments, int num_clusters) {
  assert(static_cast<int>(assignments.size()) == g.num_nodes());
  const double m = g.num_edges();
  if (m == 0.0) return 0.0;
  std::vector<double> intra(num_clusters, 0.0);
  std::vector<double> degree(num_clusters, 0.0);
  for (const auto& [u, v] : g.edges()) {
    assert(assignments[u] >= 0 && assignments[u] < num_clusters);
    assert(assignments[v] >= 0 && assignments[v] < num_clusters);
    if (assignments[u] == assignments[v]) intra[assignments[u]] += 1.0;
    degree[assignments[u]] += 1.0;
    degree[assignments[v]] += 1.0;
  }
  double q = 0.0;
  for (int c = 0; c < num_clusters; ++c) {
    const double frac = degree[c] / (2.0 * m);
    q += intra[c] / m - frac * frac;
  }
  return q;
}

std::vector<int> ConnectedComponents(const AttributedGraph& g, int* count) {
  const int n = g.num_nodes();
  const auto adj = AdjacencyLists(g);
  std::vector<int> component(n, -1);
  int next = 0;
  for (int start = 0; start < n; ++start) {
    if (component[start] >= 0) continue;
    std::queue<int> frontier;
    frontier.push(start);
    component[start] = next;
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      for (int v : adj[u]) {
        if (component[v] < 0) {
          component[v] = next;
          frontier.push(v);
        }
      }
    }
    ++next;
  }
  if (count != nullptr) *count = next;
  return component;
}

int LargestComponentSize(const AttributedGraph& g) {
  int count = 0;
  const std::vector<int> component = ConnectedComponents(g, &count);
  std::vector<int> sizes(count, 0);
  for (int c : component) ++sizes[c];
  return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

double GlobalClusteringCoefficient(const AttributedGraph& g) {
  const auto adj = AdjacencyLists(g);
  long triangles_times_3 = 0;
  long triples = 0;
  for (int u = 0; u < g.num_nodes(); ++u) {
    const long deg = static_cast<long>(adj[u].size());
    triples += deg * (deg - 1) / 2;
    for (size_t a = 0; a < adj[u].size(); ++a) {
      for (size_t b = a + 1; b < adj[u].size(); ++b) {
        if (g.HasEdge(adj[u][a], adj[u][b])) ++triangles_times_3;
      }
    }
  }
  if (triples == 0) return 0.0;
  return static_cast<double>(triangles_times_3) / triples;
}

GraphStats ComputeStats(const AttributedGraph& g) {
  GraphStats s;
  s.nodes = g.num_nodes();
  s.edges = g.num_edges();
  const std::vector<int> degrees = g.Degrees();
  long total = 0;
  for (int d : degrees) {
    total += d;
    s.max_degree = std::max(s.max_degree, d);
  }
  s.mean_degree = s.nodes > 0 ? static_cast<double>(total) / s.nodes : 0.0;
  ConnectedComponents(g, &s.components);
  s.largest_component = LargestComponentSize(g);
  if (g.has_labels()) s.homophily = g.EdgeHomophily();
  s.clustering_coefficient = GlobalClusteringCoefficient(g);
  return s;
}

}  // namespace rgae
