#include "src/graph/csr.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/kernels/kernels.h"
#include "src/obs/trace.h"

namespace rgae {

CsrMatrix CsrMatrix::FromTriplets(int rows, int cols,
                                  std::vector<Triplet> triplets) {
  assert(rows >= 0 && cols >= 0);
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  size_t i = 0;
  for (int r = 0; r < rows; ++r) {
    while (i < triplets.size() && triplets[i].row == r) {
      assert(triplets[i].col >= 0 && triplets[i].col < cols);
      double v = triplets[i].value;
      const int c = triplets[i].col;
      ++i;
      // Merge duplicates.
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
    }
    m.row_ptr_[r + 1] = static_cast<int>(m.col_idx_.size());
  }
  assert(i == triplets.size());  // All rows must be within [0, rows).
  return m;
}

CsrMatrix CsrMatrix::Identity(int n) {
  std::vector<Triplet> t;
  t.reserve(n);
  for (int i = 0; i < n; ++i) t.push_back({i, i, 1.0});
  return FromTriplets(n, n, std::move(t));
}

int CsrMatrix::FindIndex(int r, int c) const {
  assert(r >= 0 && r < rows_);
  const int begin = row_ptr_[r];
  const int end = row_ptr_[r + 1];
  const auto it = std::lower_bound(col_idx_.begin() + begin,
                                   col_idx_.begin() + end, c);
  if (it == col_idx_.begin() + end || *it != c) return -1;
  return static_cast<int>(it - col_idx_.begin());
}

double CsrMatrix::At(int r, int c) const {
  const int idx = FindIndex(r, c);
  return idx < 0 ? 0.0 : values_[idx];
}

std::vector<int> CsrMatrix::RowCols(int r) const {
  return std::vector<int>(col_idx_.begin() + row_ptr_[r],
                          col_idx_.begin() + row_ptr_[r + 1]);
}

Matrix CsrMatrix::Multiply(const Matrix& x) const {
  RGAE_TIMED_KERNEL("kernel.spmm");
  // Cost model: 2 flops per stored entry per output column; bytes = the
  // stored values once plus one x-row read and the dense output.
  RGAE_KERNEL_WORK("kernel.spmm", 2LL * nnz() * x.cols(),
                   8LL * (nnz() + static_cast<int64_t>(nnz()) * x.cols() +
                          static_cast<int64_t>(rows_) * x.cols()));
  assert(cols_ == x.rows());
  Matrix out(rows_, x.cols());
  kernels::Spmm(row_ptr_.data(), col_idx_.data(), values_.data(), rows_,
                x.data(), x.cols(), out.data());
  return out;
}

Matrix CsrMatrix::MultiplyTransposed(const Matrix& x) const {
  RGAE_TIMED_KERNEL("kernel.spmm");
  RGAE_KERNEL_WORK("kernel.spmm", 2LL * nnz() * x.cols(),
                   8LL * (nnz() + static_cast<int64_t>(nnz()) * x.cols() +
                          static_cast<int64_t>(cols_) * x.cols()));
  assert(rows_ == x.rows());
  Matrix out(cols_, x.cols());
  kernels::SpmmScatter(row_ptr_.data(), col_idx_.data(), values_.data(),
                       rows_, x.data(), x.cols(), out.data());
  return out;
}

std::vector<double> CsrMatrix::RowSums() const {
  std::vector<double> sums(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) sums[r] += values_[k];
  }
  return sums;
}

CsrMatrix CsrMatrix::SymmetricallyNormalized() const {
  assert(rows_ == cols_);
  const std::vector<double> deg = RowSums();
  std::vector<double> inv_sqrt(rows_, 0.0);
  for (int i = 0; i < rows_; ++i) {
    if (deg[i] > 0.0) inv_sqrt[i] = 1.0 / std::sqrt(deg[i]);
  }
  CsrMatrix out = *this;
  for (int r = 0; r < rows_; ++r) {
    for (int k = out.row_ptr_[r]; k < out.row_ptr_[r + 1]; ++k) {
      out.values_[k] *= inv_sqrt[r] * inv_sqrt[out.col_idx_[k]];
    }
  }
  return out;
}

CsrMatrix CsrMatrix::AddSelfLoops() const {
  assert(rows_ == cols_);
  std::vector<Triplet> t = ToTriplets();
  for (int i = 0; i < rows_; ++i) t.push_back({i, i, 1.0});
  return FromTriplets(rows_, cols_, std::move(t));
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out(r, col_idx_[k]) = values_[k];
    }
  }
  return out;
}

std::vector<Triplet> CsrMatrix::ToTriplets() const {
  std::vector<Triplet> t;
  t.reserve(values_.size());
  for (int r = 0; r < rows_; ++r) {
    for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      t.push_back({r, col_idx_[k], values_[k]});
    }
  }
  return t;
}

bool CsrMatrix::operator==(const CsrMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_ &&
         values_ == other.values_;
}

}  // namespace rgae
