#ifndef RGAE_GRAPH_CSR_H_
#define RGAE_GRAPH_CSR_H_

#include <utility>
#include <vector>

#include "src/tensor/matrix.h"

namespace rgae {

/// A weighted edge (row, col, value) used to assemble sparse matrices.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

/// Compressed-sparse-row matrix of doubles.
///
/// This is the graph-operator workhorse: adjacency matrices, normalized
/// graph filters à = D^-1/2 (A+I) D^-1/2, and clustering/self-supervision
/// graphs are all CsrMatrix instances. Rows are kept sorted by column which
/// makes membership tests O(log deg) and merging deterministic.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets; duplicate (row,col) entries are summed.
  static CsrMatrix FromTriplets(int rows, int cols,
                                std::vector<Triplet> triplets);

  /// Identity matrix of the given size.
  static CsrMatrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Number of stored (structural) non-zeros.
  int nnz() const { return static_cast<int>(values_.size()); }

  const std::vector<int>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// Number of stored entries in row `r`.
  int RowNnz(int r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  /// Value at (r, c); 0 if not stored. O(log deg(r)).
  double At(int r, int c) const;
  /// True if (r, c) is a stored entry.
  bool Contains(int r, int c) const { return FindIndex(r, c) >= 0; }

  /// Column indices of row `r` (sorted ascending).
  std::vector<int> RowCols(int r) const;

  /// Dense product: this * x. Shapes: (m,n)x(n,d) -> (m,d).
  Matrix Multiply(const Matrix& x) const;
  /// Dense product with the transpose: thisᵀ * x. Shapes: (m,n)ᵀ x(m,d) -> (n,d).
  Matrix MultiplyTransposed(const Matrix& x) const;

  /// Row sums (weighted out-degrees).
  std::vector<double> RowSums() const;

  /// Returns D^-1/2 * this * D^-1/2 where D = diag(row sums). Rows with zero
  /// sum are left as zero rows. The matrix must be square.
  CsrMatrix SymmetricallyNormalized() const;

  /// Returns this + identity (adds 1.0 to each diagonal entry); square only.
  CsrMatrix AddSelfLoops() const;

  /// Returns a dense copy; intended for small matrices and tests.
  Matrix ToDense() const;

  /// Returns all stored entries as triplets.
  std::vector<Triplet> ToTriplets() const;

  /// Structural + numeric equality.
  bool operator==(const CsrMatrix& other) const;

 private:
  // Index into values_/col_idx_ for entry (r, c), or -1 if absent.
  int FindIndex(int r, int c) const;

  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> row_ptr_ = {0};
  std::vector<int> col_idx_;
  std::vector<double> values_;
};

}  // namespace rgae

#endif  // RGAE_GRAPH_CSR_H_
