# Empty compiler generated dependencies file for latent_tsne.
# This may be replaced when dependencies are built.
