file(REMOVE_RECURSE
  "CMakeFiles/latent_tsne.dir/latent_tsne.cc.o"
  "CMakeFiles/latent_tsne.dir/latent_tsne.cc.o.d"
  "latent_tsne"
  "latent_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latent_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
