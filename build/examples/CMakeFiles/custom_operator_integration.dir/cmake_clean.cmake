file(REMOVE_RECURSE
  "CMakeFiles/custom_operator_integration.dir/custom_operator_integration.cc.o"
  "CMakeFiles/custom_operator_integration.dir/custom_operator_integration.cc.o.d"
  "custom_operator_integration"
  "custom_operator_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_operator_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
