# Empty compiler generated dependencies file for custom_operator_integration.
# This may be replaced when dependencies are built.
