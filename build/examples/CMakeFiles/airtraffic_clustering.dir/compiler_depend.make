# Empty compiler generated dependencies file for airtraffic_clustering.
# This may be replaced when dependencies are built.
