file(REMOVE_RECURSE
  "CMakeFiles/airtraffic_clustering.dir/airtraffic_clustering.cc.o"
  "CMakeFiles/airtraffic_clustering.dir/airtraffic_clustering.cc.o.d"
  "airtraffic_clustering"
  "airtraffic_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airtraffic_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
