file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_ablate_thresholds.dir/bench_table8_ablate_thresholds.cc.o"
  "CMakeFiles/bench_table8_ablate_thresholds.dir/bench_table8_ablate_thresholds.cc.o.d"
  "bench_table8_ablate_thresholds"
  "bench_table8_ablate_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_ablate_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
