# Empty dependencies file for bench_table8_ablate_thresholds.
# This may be replaced when dependencies are built.
