# Empty dependencies file for bench_fig11_12_alpha_sensitivity.
# This may be replaced when dependencies are built.
