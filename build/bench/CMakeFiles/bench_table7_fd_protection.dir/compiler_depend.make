# Empty compiler generated dependencies file for bench_table7_fd_protection.
# This may be replaced when dependencies are built.
