file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_fd_protection.dir/bench_table7_fd_protection.cc.o"
  "CMakeFiles/bench_table7_fd_protection.dir/bench_table7_fd_protection.cc.o.d"
  "bench_table7_fd_protection"
  "bench_table7_fd_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_fd_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
