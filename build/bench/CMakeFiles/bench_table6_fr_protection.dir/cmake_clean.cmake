file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_fr_protection.dir/bench_table6_fr_protection.cc.o"
  "CMakeFiles/bench_table6_fr_protection.dir/bench_table6_fr_protection.cc.o.d"
  "bench_table6_fr_protection"
  "bench_table6_fr_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_fr_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
