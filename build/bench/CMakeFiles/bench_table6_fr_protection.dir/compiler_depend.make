# Empty compiler generated dependencies file for bench_table6_fr_protection.
# This may be replaced when dependencies are built.
