# Empty compiler generated dependencies file for bench_table4_mean_airtraffic.
# This may be replaced when dependencies are built.
