file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_mean_airtraffic.dir/bench_table4_mean_airtraffic.cc.o"
  "CMakeFiles/bench_table4_mean_airtraffic.dir/bench_table4_mean_airtraffic.cc.o.d"
  "bench_table4_mean_airtraffic"
  "bench_table4_mean_airtraffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_mean_airtraffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
