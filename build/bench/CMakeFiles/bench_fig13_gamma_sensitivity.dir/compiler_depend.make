# Empty compiler generated dependencies file for bench_fig13_gamma_sensitivity.
# This may be replaced when dependencies are built.
