# Empty compiler generated dependencies file for bench_ext_multiplex.
# This may be replaced when dependencies are built.
