file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multiplex.dir/bench_ext_multiplex.cc.o"
  "CMakeFiles/bench_ext_multiplex.dir/bench_ext_multiplex.cc.o.d"
  "bench_ext_multiplex"
  "bench_ext_multiplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multiplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
