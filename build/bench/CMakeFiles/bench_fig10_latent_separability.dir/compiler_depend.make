# Empty compiler generated dependencies file for bench_fig10_latent_separability.
# This may be replaced when dependencies are built.
