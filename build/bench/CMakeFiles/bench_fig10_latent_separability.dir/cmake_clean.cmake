file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_latent_separability.dir/bench_fig10_latent_separability.cc.o"
  "CMakeFiles/bench_fig10_latent_separability.dir/bench_fig10_latent_separability.cc.o.d"
  "bench_fig10_latent_separability"
  "bench_fig10_latent_separability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_latent_separability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
