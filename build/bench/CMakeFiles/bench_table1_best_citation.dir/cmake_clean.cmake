file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_best_citation.dir/bench_table1_best_citation.cc.o"
  "CMakeFiles/bench_table1_best_citation.dir/bench_table1_best_citation.cc.o.d"
  "bench_table1_best_citation"
  "bench_table1_best_citation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_best_citation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
