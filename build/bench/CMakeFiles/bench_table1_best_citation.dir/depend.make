# Empty dependencies file for bench_table1_best_citation.
# This may be replaced when dependencies are built.
