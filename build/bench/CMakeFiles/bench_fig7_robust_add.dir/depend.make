# Empty dependencies file for bench_fig7_robust_add.
# This may be replaced when dependencies are built.
