# Empty dependencies file for bench_fig8_robust_drop.
# This may be replaced when dependencies are built.
