file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_robust_drop.dir/bench_fig8_robust_drop.cc.o"
  "CMakeFiles/bench_fig8_robust_drop.dir/bench_fig8_robust_drop.cc.o.d"
  "bench_fig8_robust_drop"
  "bench_fig8_robust_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_robust_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
