# Empty compiler generated dependencies file for bench_table2_mean_citation.
# This may be replaced when dependencies are built.
