file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_mean_citation.dir/bench_table2_mean_citation.cc.o"
  "CMakeFiles/bench_table2_mean_citation.dir/bench_table2_mean_citation.cc.o.d"
  "bench_table2_mean_citation"
  "bench_table2_mean_citation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_mean_citation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
