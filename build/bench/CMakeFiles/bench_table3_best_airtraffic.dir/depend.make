# Empty dependencies file for bench_table3_best_airtraffic.
# This may be replaced when dependencies are built.
