file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_lambda_fr.dir/bench_fig5_lambda_fr.cc.o"
  "CMakeFiles/bench_fig5_lambda_fr.dir/bench_fig5_lambda_fr.cc.o.d"
  "bench_fig5_lambda_fr"
  "bench_fig5_lambda_fr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lambda_fr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
