# Empty dependencies file for bench_fig5_lambda_fr.
# This may be replaced when dependencies are built.
