# Empty dependencies file for bench_table9_ablate_edges.
# This may be replaced when dependencies are built.
