# Empty compiler generated dependencies file for bench_table17_comparison.
# This may be replaced when dependencies are built.
