file(REMOVE_RECURSE
  "CMakeFiles/bench_table17_comparison.dir/bench_table17_comparison.cc.o"
  "CMakeFiles/bench_table17_comparison.dir/bench_table17_comparison.cc.o.d"
  "bench_table17_comparison"
  "bench_table17_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table17_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
