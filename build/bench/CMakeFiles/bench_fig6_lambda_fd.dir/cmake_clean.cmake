file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_lambda_fd.dir/bench_fig6_lambda_fd.cc.o"
  "CMakeFiles/bench_fig6_lambda_fd.dir/bench_fig6_lambda_fd.cc.o.d"
  "bench_fig6_lambda_fd"
  "bench_fig6_lambda_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_lambda_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
