# Empty dependencies file for bench_fig6_lambda_fd.
# This may be replaced when dependencies are built.
