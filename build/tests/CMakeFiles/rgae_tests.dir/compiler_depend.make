# Empty compiler generated dependencies file for rgae_tests.
# This may be replaced when dependencies are built.
