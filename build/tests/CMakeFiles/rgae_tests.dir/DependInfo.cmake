
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cc" "tests/CMakeFiles/rgae_tests.dir/analysis_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/analysis_test.cc.o.d"
  "/root/repo/tests/assignments_test.cc" "tests/CMakeFiles/rgae_tests.dir/assignments_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/assignments_test.cc.o.d"
  "/root/repo/tests/autograd_test.cc" "tests/CMakeFiles/rgae_tests.dir/autograd_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/autograd_test.cc.o.d"
  "/root/repo/tests/clustering_metrics_test.cc" "tests/CMakeFiles/rgae_tests.dir/clustering_metrics_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/clustering_metrics_test.cc.o.d"
  "/root/repo/tests/corrupt_test.cc" "tests/CMakeFiles/rgae_tests.dir/corrupt_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/corrupt_test.cc.o.d"
  "/root/repo/tests/csr_test.cc" "tests/CMakeFiles/rgae_tests.dir/csr_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/csr_test.cc.o.d"
  "/root/repo/tests/datasets_test.cc" "tests/CMakeFiles/rgae_tests.dir/datasets_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/datasets_test.cc.o.d"
  "/root/repo/tests/fr_fd_test.cc" "tests/CMakeFiles/rgae_tests.dir/fr_fd_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/fr_fd_test.cc.o.d"
  "/root/repo/tests/gcn_test.cc" "tests/CMakeFiles/rgae_tests.dir/gcn_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/gcn_test.cc.o.d"
  "/root/repo/tests/generators_test.cc" "tests/CMakeFiles/rgae_tests.dir/generators_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/generators_test.cc.o.d"
  "/root/repo/tests/gmm_test.cc" "tests/CMakeFiles/rgae_tests.dir/gmm_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/gmm_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/rgae_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/rgae_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/hungarian_test.cc" "tests/CMakeFiles/rgae_tests.dir/hungarian_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/hungarian_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/rgae_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/rgae_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/kmeans_test.cc" "tests/CMakeFiles/rgae_tests.dir/kmeans_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/kmeans_test.cc.o.d"
  "/root/repo/tests/matrix_test.cc" "tests/CMakeFiles/rgae_tests.dir/matrix_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/matrix_test.cc.o.d"
  "/root/repo/tests/models_test.cc" "tests/CMakeFiles/rgae_tests.dir/models_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/models_test.cc.o.d"
  "/root/repo/tests/multiplex_test.cc" "tests/CMakeFiles/rgae_tests.dir/multiplex_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/multiplex_test.cc.o.d"
  "/root/repo/tests/operators_test.cc" "tests/CMakeFiles/rgae_tests.dir/operators_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/operators_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/rgae_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/random_test.cc" "tests/CMakeFiles/rgae_tests.dir/random_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/random_test.cc.o.d"
  "/root/repo/tests/spectral_test.cc" "tests/CMakeFiles/rgae_tests.dir/spectral_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/spectral_test.cc.o.d"
  "/root/repo/tests/theory_test.cc" "tests/CMakeFiles/rgae_tests.dir/theory_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/theory_test.cc.o.d"
  "/root/repo/tests/trainer_test.cc" "tests/CMakeFiles/rgae_tests.dir/trainer_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/trainer_test.cc.o.d"
  "/root/repo/tests/tsne_test.cc" "tests/CMakeFiles/rgae_tests.dir/tsne_test.cc.o" "gcc" "tests/CMakeFiles/rgae_tests.dir/tsne_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rgae.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
