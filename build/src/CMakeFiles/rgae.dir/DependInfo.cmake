
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/assignments.cc" "src/CMakeFiles/rgae.dir/clustering/assignments.cc.o" "gcc" "src/CMakeFiles/rgae.dir/clustering/assignments.cc.o.d"
  "/root/repo/src/clustering/gmm.cc" "src/CMakeFiles/rgae.dir/clustering/gmm.cc.o" "gcc" "src/CMakeFiles/rgae.dir/clustering/gmm.cc.o.d"
  "/root/repo/src/clustering/kmeans.cc" "src/CMakeFiles/rgae.dir/clustering/kmeans.cc.o" "gcc" "src/CMakeFiles/rgae.dir/clustering/kmeans.cc.o.d"
  "/root/repo/src/clustering/spectral.cc" "src/CMakeFiles/rgae.dir/clustering/spectral.cc.o" "gcc" "src/CMakeFiles/rgae.dir/clustering/spectral.cc.o.d"
  "/root/repo/src/clustering/tsne.cc" "src/CMakeFiles/rgae.dir/clustering/tsne.cc.o" "gcc" "src/CMakeFiles/rgae.dir/clustering/tsne.cc.o.d"
  "/root/repo/src/core/operators.cc" "src/CMakeFiles/rgae.dir/core/operators.cc.o" "gcc" "src/CMakeFiles/rgae.dir/core/operators.cc.o.d"
  "/root/repo/src/core/rgae_trainer.cc" "src/CMakeFiles/rgae.dir/core/rgae_trainer.cc.o" "gcc" "src/CMakeFiles/rgae.dir/core/rgae_trainer.cc.o.d"
  "/root/repo/src/eval/datasets.cc" "src/CMakeFiles/rgae.dir/eval/datasets.cc.o" "gcc" "src/CMakeFiles/rgae.dir/eval/datasets.cc.o.d"
  "/root/repo/src/eval/harness.cc" "src/CMakeFiles/rgae.dir/eval/harness.cc.o" "gcc" "src/CMakeFiles/rgae.dir/eval/harness.cc.o.d"
  "/root/repo/src/eval/table.cc" "src/CMakeFiles/rgae.dir/eval/table.cc.o" "gcc" "src/CMakeFiles/rgae.dir/eval/table.cc.o.d"
  "/root/repo/src/graph/analysis.cc" "src/CMakeFiles/rgae.dir/graph/analysis.cc.o" "gcc" "src/CMakeFiles/rgae.dir/graph/analysis.cc.o.d"
  "/root/repo/src/graph/corrupt.cc" "src/CMakeFiles/rgae.dir/graph/corrupt.cc.o" "gcc" "src/CMakeFiles/rgae.dir/graph/corrupt.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/CMakeFiles/rgae.dir/graph/csr.cc.o" "gcc" "src/CMakeFiles/rgae.dir/graph/csr.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/rgae.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/rgae.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/rgae.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/rgae.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/rgae.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/rgae.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/multiplex.cc" "src/CMakeFiles/rgae.dir/graph/multiplex.cc.o" "gcc" "src/CMakeFiles/rgae.dir/graph/multiplex.cc.o.d"
  "/root/repo/src/metrics/clustering_metrics.cc" "src/CMakeFiles/rgae.dir/metrics/clustering_metrics.cc.o" "gcc" "src/CMakeFiles/rgae.dir/metrics/clustering_metrics.cc.o.d"
  "/root/repo/src/metrics/fr_fd.cc" "src/CMakeFiles/rgae.dir/metrics/fr_fd.cc.o" "gcc" "src/CMakeFiles/rgae.dir/metrics/fr_fd.cc.o.d"
  "/root/repo/src/metrics/hungarian.cc" "src/CMakeFiles/rgae.dir/metrics/hungarian.cc.o" "gcc" "src/CMakeFiles/rgae.dir/metrics/hungarian.cc.o.d"
  "/root/repo/src/metrics/theory.cc" "src/CMakeFiles/rgae.dir/metrics/theory.cc.o" "gcc" "src/CMakeFiles/rgae.dir/metrics/theory.cc.o.d"
  "/root/repo/src/models/argae.cc" "src/CMakeFiles/rgae.dir/models/argae.cc.o" "gcc" "src/CMakeFiles/rgae.dir/models/argae.cc.o.d"
  "/root/repo/src/models/dgae.cc" "src/CMakeFiles/rgae.dir/models/dgae.cc.o" "gcc" "src/CMakeFiles/rgae.dir/models/dgae.cc.o.d"
  "/root/repo/src/models/gae.cc" "src/CMakeFiles/rgae.dir/models/gae.cc.o" "gcc" "src/CMakeFiles/rgae.dir/models/gae.cc.o.d"
  "/root/repo/src/models/gcn.cc" "src/CMakeFiles/rgae.dir/models/gcn.cc.o" "gcc" "src/CMakeFiles/rgae.dir/models/gcn.cc.o.d"
  "/root/repo/src/models/gmm_vgae.cc" "src/CMakeFiles/rgae.dir/models/gmm_vgae.cc.o" "gcc" "src/CMakeFiles/rgae.dir/models/gmm_vgae.cc.o.d"
  "/root/repo/src/models/model.cc" "src/CMakeFiles/rgae.dir/models/model.cc.o" "gcc" "src/CMakeFiles/rgae.dir/models/model.cc.o.d"
  "/root/repo/src/models/model_factory.cc" "src/CMakeFiles/rgae.dir/models/model_factory.cc.o" "gcc" "src/CMakeFiles/rgae.dir/models/model_factory.cc.o.d"
  "/root/repo/src/models/vgae.cc" "src/CMakeFiles/rgae.dir/models/vgae.cc.o" "gcc" "src/CMakeFiles/rgae.dir/models/vgae.cc.o.d"
  "/root/repo/src/tensor/autograd.cc" "src/CMakeFiles/rgae.dir/tensor/autograd.cc.o" "gcc" "src/CMakeFiles/rgae.dir/tensor/autograd.cc.o.d"
  "/root/repo/src/tensor/matrix.cc" "src/CMakeFiles/rgae.dir/tensor/matrix.cc.o" "gcc" "src/CMakeFiles/rgae.dir/tensor/matrix.cc.o.d"
  "/root/repo/src/tensor/optimizer.cc" "src/CMakeFiles/rgae.dir/tensor/optimizer.cc.o" "gcc" "src/CMakeFiles/rgae.dir/tensor/optimizer.cc.o.d"
  "/root/repo/src/tensor/random.cc" "src/CMakeFiles/rgae.dir/tensor/random.cc.o" "gcc" "src/CMakeFiles/rgae.dir/tensor/random.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
