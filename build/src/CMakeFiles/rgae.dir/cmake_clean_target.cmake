file(REMOVE_RECURSE
  "librgae.a"
)
