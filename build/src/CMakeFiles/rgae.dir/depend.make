# Empty dependencies file for rgae.
# This may be replaced when dependencies are built.
